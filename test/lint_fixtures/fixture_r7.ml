(* R7 fixture: mentions Domain, so its whole dependency closure (including
   Fixture_r7_state) is shared-state territory. *)
let spawn () = Domain.spawn (fun () -> Fixture_r7_state.bump ())

let bad_fork () = Unix.fork ()

(* pnnlint:allow R7 fixture: latch held, no domain has ever been spawned *)
let ok_fork () = Unix.fork ()
