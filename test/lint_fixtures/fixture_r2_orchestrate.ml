(* R2 orchestrate fixture: orchestrator units publish cache entries and
   assemble committed tables, so a wall clock inside one is a finding
   unless its allow says the time only drives the lease protocol. *)
let lease_deadline () = Unix.gettimeofday ()

(* pnnlint:allow R2 fixture: wall clock renews a lease only; unit results
   are content-addressed and never read it *)
let renewed_expiry lease = Unix.time () +. lease
