(* S1 fixture: malformed suppression (no reason) does not suppress. *)
(* pnnlint:allow R5 *)
let bad a b = compare a b
