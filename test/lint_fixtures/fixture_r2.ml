(* R2 fixture: wall clock + global Random in a result-reachable unit. *)
let now () = Unix.gettimeofday ()
let draw () = Random.float 1.0

(* pnnlint:allow R2 fixture: timing for a log line only *)
let logged () = Sys.time ()
