(* P0 fixture: does not parse. *)
let = )
