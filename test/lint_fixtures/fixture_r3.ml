(* R3 fixture: hash-order traversal. *)
let bad tbl = Hashtbl.iter (fun _ v -> print_int v) tbl
let bad_fold tbl = Hashtbl.fold (fun _ v acc -> v + acc) tbl 0

(* pnnlint:allow R3 fixture: commutative fold, order cannot escape *)
let ok tbl = Hashtbl.fold (fun _ v acc -> v + acc) tbl 0
