(* R1 fixture: stream aliasing via Rng.copy. *)
let bad rng = Rng.copy rng

(* pnnlint:allow R1 fixture shows a counted, justified copy *)
let ok rng = Rng.copy rng
