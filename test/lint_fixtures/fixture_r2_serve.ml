(* R2 serve fixture: a serving unit is result-producing (a response is a
   result), so wall clocks inside it are findings unless the site carries a
   reasoned allow saying the time only schedules, never answers. *)
let deadline () = Unix.gettimeofday ()

(* pnnlint:allow R2 scheduling only: picks a select timeout, never a
   response field *)
let linger_left t = t -. Unix.time ()
