(* R7 control: the same mutable state with no domain user in reach — must
   stay silent (reachability-gated, like R2). *)
let lonely = ref 0
let touch () = incr lonely
