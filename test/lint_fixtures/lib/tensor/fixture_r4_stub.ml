(* R4 external fixture: C-stub declarations in lib/tensor must carry a
   SAFETY note; %-primitives are compiler intrinsics and exempt, and
   Kernels_c references are legal from inside lib/tensor (no R6). *)
external bad_stub : float -> float = "pnn_fixture_bad" [@@noalloc]

(* SAFETY: fixture — pure float-in/float-out stub, touches no buffers *)
external ok_stub : float -> float = "pnn_fixture_ok" [@@noalloc]

external ok_prim : ('a, 'b, 'c) Bigarray.Array1.t -> int -> 'a
  = "%caml_ba_ref_1"

(* pnnlint:allow R4 fixture: waiver instead of a SAFETY note *)
external ok_waived : float -> float = "pnn_fixture_waived" [@@noalloc]

let ok_inside () = Kernels_c.create 4
