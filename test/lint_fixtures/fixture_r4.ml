(* R4 fixture: unsafe access with and without a SAFETY note. *)
let bad a = Array.unsafe_get a 0

let ok a =
  (* SAFETY: fixture — the caller guarantees a has at least two cells *)
  Array.unsafe_get a 1

(* pnnlint:allow R4 fixture: waiver instead of a SAFETY note *)
let ok2 a = Bytes.unsafe_get a 2

let bad_ba b = Bigarray.Array1.unsafe_get b 0

let ok_ba b =
  (* SAFETY: fixture — the caller guarantees b has at least two cells *)
  Array1.unsafe_set b 1 0.0
