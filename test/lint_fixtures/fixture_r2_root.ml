(* Designated R2 root for the fixture closure; pulls in Fixture_r2. *)
let use () = Fixture_r2.now ()
