(* R5 fixture: polymorphic comparison at float-carrying types. *)
let bad a b = compare a b
let bad_eq x = x = 0.0

(* pnnlint:allow R5 fixture: IEEE exact-zero sentinel *)
let ok x = x <> 0.0

let ok_typed a b = Float.compare a b
