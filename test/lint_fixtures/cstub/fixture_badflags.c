/* R8 fixture: correct ABI, but its dune pair lacks the float-contract
   flags, so the multiply-add below is a contraction risk. */
#include <caml/mlvalues.h>

CAMLprim value fixbad_axpy(value va, value vb, double k, intnat n)
{
  double *a = (double *) va;
  double *b = (double *) vb;
  for (intnat i = 0; i < n; i++)
    b[i] = b[i] + k * a[i];
  return Val_unit;
}
CAMLprim value fixbad_axpy_byte(value va, value vb, value vk, value vn)
{
  return fixbad_axpy(va, vb, Double_val(vk), Long_val(vn));
}
