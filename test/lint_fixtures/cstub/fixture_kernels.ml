(* R8 fixture externals: cross-checked against fixture_stubs.c (the pair is
   registered in test_lint's fixture config). *)
type buf = unit

external ok_add : buf -> buf -> (int[@untagged]) -> unit
  = "fix_ok_add_byte" "fix_ok_add"
[@@noalloc]

(* byte name breaks the <native>_byte twin convention *)
external bad_twin : buf -> (int[@untagged]) -> unit
  = "fix_bad_twin_bytecode" "fix_bad_twin"
[@@noalloc]

(* OCaml declares 2 arguments, the C native takes 3 *)
external bad_arity : buf -> (int[@untagged]) -> unit
  = "fix_bad_arity_byte" "fix_bad_arity"
[@@noalloc]

(* [@@noalloc] but the native stub reaches the OCaml heap via a helper *)
external bad_alloc : buf -> unit = "fix_bad_alloc_byte" "fix_bad_alloc"
[@@noalloc]

(* single name: no byte/native twin *)
external bad_single : buf -> unit = "fix_bad_single"

external uses_fma : buf -> (int[@untagged]) -> unit
  = "fix_uses_fma_byte" "fix_uses_fma"
[@@noalloc]

external uses_libm : buf -> (int[@untagged]) -> unit
  = "fix_uses_libm_byte" "fix_uses_libm"
[@@noalloc]

external ok_fma : buf -> (int[@untagged]) -> unit
  = "fix_ok_fma_byte" "fix_ok_fma"
[@@noalloc]
