/* R8 fixture stubs: twin/arity/noalloc/float-contract violations plus a
   suppressed negative; paired with fixture_kernels.ml. */
#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <math.h>

CAMLprim value fix_ok_add(value va, value vb, intnat n)
{
  (void) va; (void) vb; (void) n;
  return Val_unit;
}
CAMLprim value fix_ok_add_byte(value va, value vb, value vn)
{
  return fix_ok_add(va, vb, Long_val(vn));
}

CAMLprim value fix_bad_twin(value va, intnat n)
{
  (void) va; (void) n;
  return Val_unit;
}
CAMLprim value fix_bad_twin_bytecode(value va, value vn)
{
  return fix_bad_twin(va, Long_val(vn));
}

CAMLprim value fix_bad_arity(value va, intnat n, intnat extra)
{
  (void) va; (void) n; (void) extra;
  return Val_unit;
}
CAMLprim value fix_bad_arity_byte(value va, value vn, value vextra)
{
  return fix_bad_arity(va, Long_val(vn), Long_val(vextra));
}

static value box_unit_helper(void)
{
  return caml_copy_double(0.0);
}
CAMLprim value fix_bad_alloc(value va)
{
  (void) va;
  return box_unit_helper();
}
CAMLprim value fix_bad_alloc_byte(value va)
{
  return fix_bad_alloc(va);
}

CAMLprim value fix_bad_single(value va)
{
  (void) va;
  return Val_unit;
}

CAMLprim value fix_uses_fma(value va, intnat n)
{
  double *a = (double *) va;
  for (intnat i = 0; i < n; i++) a[i] = fma(a[i], 2.0, 1.0);
  return Val_unit;
}
CAMLprim value fix_uses_fma_byte(value va, value vn)
{
  return fix_uses_fma(va, Long_val(vn));
}

CAMLprim value fix_uses_libm(value va, intnat n)
{
  double *a = (double *) va;
  for (intnat i = 0; i < n; i++) a[i] = sin(a[i]);
  return Val_unit;
}
CAMLprim value fix_uses_libm_byte(value va, value vn)
{
  return fix_uses_libm(va, Long_val(vn));
}

CAMLprim value fix_ok_fma(value va, intnat n)
{
  double *a = (double *) va;
  /* pnnlint:allow R8 fixture: constant arguments, result is bit-pinned */
  for (intnat i = 0; i < n; i++) a[i] = fma(1.0, 2.0, 3.0);
  return Val_unit;
}
CAMLprim value fix_ok_fma_byte(value va, value vn)
{
  return fix_ok_fma(va, Long_val(vn));
}

CAMLprim value fix_orphan(value va)
{
  (void) va;
  return Val_unit;
}

#pragma STDC FP_CONTRACT ON

__attribute__((optimize("fast-math"))) static double spoiled(double x)
{
  return x + 1.0;
}
