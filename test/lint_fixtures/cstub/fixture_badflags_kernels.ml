(* R8 fixture: a correct pair whose dune contract is missing the
   IEEE-strict flags — the analyzer reports each missing flag and every
   multiply-add line as a contraction risk. *)
type buf = unit

external axpy : buf -> buf -> (float[@unboxed]) -> (int[@untagged]) -> unit
  = "fixbad_axpy_byte" "fixbad_axpy"
[@@noalloc]
