(* Regression tests for the allocation-free training hot path: in-place
   (destination-passing) tensor kernels, the reusable-gradient autodiff
   tape, the per-domain replica cache, and the Adam optimizer must all be
   bit-identical to the allocating reference implementations.  Comparisons
   go through [Int64.bits_of_float] — approximate equality would hide
   exactly the regressions these tests guard against. *)

module T = Tensor
module A = Autodiff

let bits = Int64.bits_of_float

let check_bits_tensor msg expected actual =
  if T.shape expected <> T.shape actual then
    Alcotest.failf "%s: shape %dx%d vs %dx%d" msg (T.rows expected)
      (T.cols expected) (T.rows actual) (T.cols actual);
  let e = T.to_array expected and a = T.to_array actual in
  Array.iteri
    (fun i x ->
      if bits x <> bits a.(i) then
        Alcotest.failf "%s: element %d differs bitwise: %h vs %h" msg i x a.(i))
    e

let check_bits_float msg expected actual =
  if bits expected <> bits actual then
    Alcotest.failf "%s: %h vs %h" msg expected actual

(* Shapes exercising the edge cases: empty tensors, single rows/columns. *)
let shapes = [ (0, 0); (0, 3); (1, 1); (1, 7); (5, 1); (3, 4); (7, 5); (8, 8) ]

let garbage rng rows cols = T.uniform rng rows cols ~lo:(-50.0) ~hi:50.0

let test_elementwise_into_bitwise () =
  let rng = Rng.create 11 in
  List.iter
    (fun (rows, cols) ->
      let a = T.uniform rng rows cols ~lo:(-2.0) ~hi:2.0 in
      let b = T.uniform rng rows cols ~lo:(-2.0) ~hi:2.0 in
      let check name expected run =
        (* dst starts as garbage: the kernel must overwrite every element *)
        let dst = garbage rng rows cols in
        run ~dst;
        check_bits_tensor (Printf.sprintf "%s %dx%d" name rows cols) expected dst
      in
      check "add" (T.add a b) (fun ~dst -> T.add_into a b ~dst);
      check "sub" (T.sub a b) (fun ~dst -> T.sub_into a b ~dst);
      check "mul" (T.mul a b) (fun ~dst -> T.mul_into a b ~dst);
      check "div" (T.div a b) (fun ~dst -> T.div_into a b ~dst);
      check "neg" (T.neg a) (fun ~dst -> T.neg_into a ~dst);
      check "scale" (T.scale 0.3 a) (fun ~dst -> T.scale_into 0.3 a ~dst);
      check "add_scalar" (T.add_scalar 1.7 a) (fun ~dst ->
          T.add_scalar_into 1.7 a ~dst);
      check "map" (T.map Stdlib.tanh a) (fun ~dst ->
          T.map_into Stdlib.tanh a ~dst);
      check "map2"
        (T.map2 (fun x y -> (x *. y) +. x) a b)
        (fun ~dst -> T.map2_into (fun x y -> (x *. y) +. x) a b ~dst);
      (* elementwise kernels may alias dst with an input *)
      let aliased = T.copy a in
      T.add_into aliased b ~dst:aliased;
      check_bits_tensor "add aliased" (T.add a b) aliased)
    shapes

let test_rowvec_into_bitwise () =
  let rng = Rng.create 12 in
  List.iter
    (fun (rows, cols) ->
      let m = T.uniform rng rows cols ~lo:(-2.0) ~hi:2.0 in
      let v = T.uniform rng 1 cols ~lo:0.5 ~hi:2.0 in
      let check name expected run =
        let dst = garbage rng rows cols in
        run ~dst;
        check_bits_tensor (Printf.sprintf "%s %dx%d" name rows cols) expected dst
      in
      check "add_rowvec" (T.add_rowvec m v) (fun ~dst -> T.add_rowvec_into m v ~dst);
      check "mul_rowvec" (T.mul_rowvec m v) (fun ~dst -> T.mul_rowvec_into m v ~dst);
      check "broadcast_rowvec"
        (T.mul_rowvec (T.ones rows cols) v)
        (fun ~dst -> T.broadcast_rowvec_into v ~dst))
    shapes

let test_linalg_into_bitwise () =
  let rng = Rng.create 13 in
  let triples = [ (0, 0, 0); (1, 1, 1); (2, 3, 4); (5, 4, 3); (1, 7, 2); (8, 8, 8) ] in
  List.iter
    (fun (m, k, n) ->
      let a = T.uniform rng m k ~lo:(-2.0) ~hi:2.0 in
      let b = T.uniform rng k n ~lo:(-2.0) ~hi:2.0 in
      let bt = T.transpose b in
      let label name = Printf.sprintf "%s %dx%dx%d" name m k n in
      let dst = garbage rng m n in
      T.matmul_into a b ~dst;
      check_bits_tensor (label "matmul") (T.matmul a b) dst;
      let dst = garbage rng m n in
      T.matmul_nt_into a bt ~dst;
      check_bits_tensor (label "matmul_nt") (T.matmul_nt a bt) dst;
      check_bits_tensor (label "matmul_nt vs matmul") (T.matmul a b)
        (T.matmul_nt a bt);
      let dst = garbage rng k m in
      T.transpose_into a ~dst;
      check_bits_tensor (label "transpose") (T.transpose a) dst)
    triples

let test_reduction_structure_into_bitwise () =
  let rng = Rng.create 14 in
  List.iter
    (fun (rows, cols) ->
      let t = T.uniform rng rows cols ~lo:(-2.0) ~hi:2.0 in
      let label name = Printf.sprintf "%s %dx%d" name rows cols in
      let dst = garbage rng 1 cols in
      T.sum_rows_into t ~dst;
      check_bits_tensor (label "sum_rows") (T.sum_rows t) dst;
      let dst = garbage rng rows 1 in
      T.sum_cols_into t ~dst;
      check_bits_tensor (label "sum_cols") (T.sum_cols t) dst;
      let len = cols / 2 and start = cols / 4 in
      let dst = garbage rng rows len in
      T.slice_cols_into t start len ~dst;
      check_bits_tensor (label "slice_cols") (T.slice_cols t start len) dst;
      let rlen = rows / 2 and rstart = rows / 4 in
      let dst = garbage rng rlen cols in
      T.slice_rows_into t rstart rlen ~dst;
      check_bits_tensor (label "slice_rows") (T.slice_rows t rstart rlen) dst;
      (* embed is the scatter adjoint of slice: slicing the embedding back
         out must recover the source, and everything else must be zero *)
      let src = T.uniform rng rows len ~lo:(-2.0) ~hi:2.0 in
      let dst = garbage rng rows cols in
      T.embed_cols_into src start ~dst;
      check_bits_tensor (label "embed_cols roundtrip") src
        (T.slice_cols dst start len);
      check_bits_float (label "embed_cols zeros") 0.0
        (T.sum (T.map Stdlib.abs_float dst)
        -. T.sum (T.map Stdlib.abs_float src));
      let u = T.uniform rng rows cols ~lo:(-2.0) ~hi:2.0 in
      let dst = garbage rng rows (2 * cols) in
      T.concat_cols_into t u ~dst;
      check_bits_tensor (label "concat_cols") (T.concat_cols t u) dst;
      let dst = garbage rng (2 * rows) cols in
      T.concat_rows_into t u ~dst;
      check_bits_tensor (label "concat_rows") (T.concat_rows t u) dst)
    shapes

let test_equal_nan_regression () =
  let nan_t = T.of_array [| Float.nan |] in
  let x = T.of_array [| 1.0 |] in
  Alcotest.(check bool) "nan vs value unequal" false (T.equal ~eps:1e6 nan_t x);
  Alcotest.(check bool) "value vs nan unequal" false (T.equal ~eps:1e6 x nan_t);
  Alcotest.(check bool) "nan vs nan unequal" false (T.equal ~eps:1e6 nan_t nan_t);
  Alcotest.(check bool) "finite still equal" true
    (T.equal ~eps:1e-6 x (T.of_array [| 1.0 +. 1e-9 |]))

let test_adam_in_place_bitwise () =
  let rng = Rng.create 15 in
  (* pnnlint:allow R1 intentional: both params must draw the identical
     stream so the in-place and allocating updates start from equal values *)
  let make () = A.param (T.uniform (Rng.copy rng) 3 4 ~lo:(-1.0) ~hi:1.0) in
  let p1 = make () and p2 = make () in
  let o1 = Nn.Optimizer.adam ~lr:0.05 () and o2 = Nn.Optimizer.adam ~lr:0.05 () in
  let storage = A.value p1 in
  let grng = Rng.create 16 in
  for _ = 1 to 25 do
    let g = T.uniform grng 3 4 ~lo:(-1.0) ~hi:1.0 in
    List.iter
      (fun p ->
        T.fill (A.grad p) 0.0;
        T.add_into (A.grad p) g ~dst:(A.grad p))
      [ p1; p2 ];
    Nn.Optimizer.step o1 [ p1 ];
    Nn.Optimizer.step o2 [ p2 ]
  done;
  (* two independent instances fed identical gradients agree bitwise ... *)
  check_bits_tensor "adam trajectories" (A.value p1) (A.value p2);
  (* ... and the update really is in place: same tensor, same backing array *)
  Alcotest.(check bool) "param tensor identity" true (storage == A.value p1)

(* A tiny but representative graph: matmul, rowvec broadcast, nonlinearity,
   slicing, concatenation and a softmax cross-entropy root. *)
let build_graph x_node w v labels =
  let h = A.tanh (A.add_rowvec (A.matmul x_node w) v) in
  let split = A.concat_cols (A.slice_cols h 0 1) (A.slice_cols h 1 2) in
  A.softmax_cross_entropy ~logits:(A.scale 3.0 split) ~labels

let test_tape_refresh_bitwise () =
  let rng = Rng.create 17 in
  let x0 = T.uniform rng 6 4 ~lo:(-1.0) ~hi:1.0 in
  let x1 = T.uniform rng 6 4 ~lo:(-1.0) ~hi:1.0 in
  let labels = T.init 6 3 (fun r c -> if (r mod 3) = c then 1.0 else 0.0) in
  let wt = T.uniform rng 4 3 ~lo:(-1.0) ~hi:1.0 in
  let vt = T.uniform rng 1 3 ~lo:(-1.0) ~hi:1.0 in
  (* reused graph: compile once over a const leaf, refresh with new input *)
  let x_leaf = A.const (T.copy x0) in
  let w = A.param (T.copy wt) and v = A.param (T.copy vt) in
  let tape = A.compile (build_graph x_leaf w v labels) in
  let run_reused x =
    A.set_value x_leaf x;
    A.refresh tape;
    A.backward_tape tape;
    (A.grad w, A.grad v)
  in
  (* reference: a fresh graph per input *)
  let run_fresh x =
    let w' = A.param (T.copy wt) and v' = A.param (T.copy vt) in
    A.backward (build_graph (A.const x) w' v' labels);
    (A.grad w', A.grad v')
  in
  List.iter
    (fun x ->
      let gw, gv = run_reused x in
      let gw', gv' = run_fresh x in
      check_bits_tensor "w grad" gw' gw;
      check_bits_tensor "v grad" gv' gv)
    [ x0; x1; x0 ]

(* {1 Replica-cache and golden-trajectory tests on a real printed network} *)

let golden_fixture =
  lazy
    (let dataset = Surrogate.Pipeline.generate_dataset ~n:250 () in
     let surrogate, _ =
       Surrogate.Pipeline.train_surrogate ~arch:[ 10; 8; 6; 4 ] ~max_epochs:150
         (Rng.create 42) dataset
     in
     let blob =
       Datasets.Synth.generate
         {
           Datasets.Synth.name = "golden-blobs";
           features = 3;
           classes = 2;
           samples = 70;
           modes_per_class = 1;
           class_sep = 0.32;
           spread = 0.06;
           label_noise = 0.0;
           priors = None;
           seed = 19;
         }
     in
     let split = Datasets.Synth.split (Rng.create 8) blob in
     let config =
       {
         Pnn.Config.default with
         Pnn.Config.epsilon = 0.1;
         n_mc_train = 4;
         n_mc_val = 3;
         max_epochs = 25;
         patience = 50;
       }
     in
     (config, surrogate, Pnn.Training.of_split ~n_classes:2 split))

let test_replica_cache_vs_alloc () =
  let config, surrogate, data = Lazy.force golden_fixture in
  let net = Pnn.Network.create (Rng.create 23) config surrogate ~inputs:3 ~outputs:2 in
  let shapes = Pnn.Network.theta_shapes net in
  let rng = Rng.create 31 in
  for _ = 1 to 3 do
    let noise = Pnn.Noise.draw rng ~epsilon:0.1 ~theta_shapes:shapes in
    let l_cached, g_cached =
      Pnn.Network.draw_loss_and_grads net ~noise ~x:data.Pnn.Training.x_train
        ~labels:data.Pnn.Training.y_train
    in
    let l_alloc, g_alloc =
      Pnn.Network.draw_loss_and_grads_alloc net ~noise ~x:data.Pnn.Training.x_train
        ~labels:data.Pnn.Training.y_train
    in
    check_bits_float "draw loss" l_alloc l_cached;
    List.iter2 (check_bits_tensor "draw grads") g_alloc g_cached
  done

(* Bit-exact training trajectory captured from the pre-rewrite allocating
   implementation (bin/golden_capture.ml): per-epoch train losses, the
   validation losses, and every final parameter.  Any drift in kernel
   iteration order, gradient accumulation or replica reuse shows up here. *)
let golden_train =
  [|
    "0x1.a12ecf6ec164dp-1"; "0x1.8b63f2a98ca81p-1"; "0x1.6c2945fefa934p-1";
    "0x1.4d9a074d0a9eep-1"; "0x1.415947761dc9cp-1"; "0x1.39b5a6eafc849p-1";
    "0x1.29de42f0d2a5dp-1"; "0x1.30aad8d48691cp-1"; "0x1.2ecadf873497ap-1";
    "0x1.28910424d4e52p-1"; "0x1.14345a750594dp-1"; "0x1.145844edd1aeap-1";
    "0x1.071d9d0aff184p-1"; "0x1.18ad22efb2844p-1"; "0x1.034dccace622p-1";
    "0x1.0d77ccc9aa4a9p-1"; "0x1.04187f7f10294p-1"; "0x1.0b1c7144a31b8p-1";
    "0x1.00800c9e29aecp-1"; "0x1.ec71999496aa9p-2"; "0x1.e08c4763d6948p-2";
    "0x1.d204f599067e6p-2"; "0x1.d486265d0f7d2p-2"; "0x1.dc8fc8301be32p-2";
    "0x1.e95ec60d97dcp-2";
  |]

let golden_val =
  [|
    "0x1.9490ddc9fe211p-1"; "0x1.21f7c6b70d3cp-1"; "0x1.1048e09e6b89ep-1";
    "0x1.0c7b7cb85a41fp-1"; "0x1.e8b0b1f1d5c09p-2";
  |]

let golden_params =
  [|
    "0x1.a7cabca22718dp-2"; "0x1.d57a83254c3eep-2"; "0x1.5681a915874dp-2";
    "0x1.092c75bd58608p+0"; "0x1.39335f5d7e462p+0"; "-0x1.2560456b877a4p-1";
    "0x1.6386ee90203acp-4"; "0x1.f0ff8c34106cbp-3"; "-0x1.d2f2eaf110d8bp-3";
    "-0x1.a7af0f1e3e788p-7"; "0x1.1c4a8baff0f83p-1"; "-0x1.3a91d448ec9acp-3";
    "-0x1.1b3d6131b584p-13"; "-0x1.14e6142880a63p-4"; "0x1.ec53606702afdp-1";
    "-0x1.c386cd0143f3ap-3"; "0x1.3770f6b88db41p+0"; "-0x1.8cbece171fb5ap-7";
    "0x1.9601c6bd4357p-1"; "0x1.156f1a1f6ff94p-2"; "-0x1.ba2dd330177d9p-7";
    "0x1.258a9d48e98d8p+0"; "0x1.9647f2550fb62p-3"; "-0x1.f8d44ea7566cep-6";
    "0x1.34a66c2968559p-1"; "-0x1.b86c7d7a0a3f9p-8"; "-0x1.3bb66c4e3a0f2p-4";
    "-0x1.188f3f1042944p-4"; "0x1.2a37771cbebe1p-4"; "-0x1.6987bcb9e9333p-4";
    "0x1.a404710fb0919p-6"; "0x1.ca4d61d75070ap-6"; "-0x1.b95dadecca213p-9";
    "0x1.504b944026f0dp-5"; "0x1.a25aa4292b7bp-5"; "-0x1.7e9e8f7d9974ap-9";
    "0x1.e103bed6c1535p-6"; "-0x1.d7a4e9b976609p-7"; "-0x1.dd5f37a5bdcd9p-5";
    "0x1.195c68a13a271p-7"; "-0x1.35a912fcb4786p-8"; "0x1.016f94c523e2dp-10";
    "0x1.b88984488da2dp-8"; "-0x1.55714c70f192cp-6"; "0x1.36bc4e2d865dfp-10";
    "0x1.b9a9fb7d6d178p-8"; "0x1.67363b494176fp-4"; "-0x1.0067f38d5a096p-4";
    "0x1.3e5cf9b496a38p-4"; "0x1.72b0ed465e9dcp-4"; "-0x1.6e8e540466389p-4";
    "-0x1.355bc8f76f5b3p-4"; "-0x1.22e86eb960918p-4";
  |]

let check_golden_array msg expected actual =
  Alcotest.(check int) (msg ^ " count") (Array.length expected) (Array.length actual);
  Array.iteri
    (fun i hex ->
      check_bits_float
        (Printf.sprintf "%s[%d]" msg i)
        (float_of_string hex) actual.(i))
    expected

let test_fit_golden_history () =
  let config, surrogate, data = Lazy.force golden_fixture in
  let net = Pnn.Network.create (Rng.create 23) config surrogate ~inputs:3 ~outputs:2 in
  let res = Pnn.Training.fit (Rng.create 77) net data in
  check_golden_array "train loss" golden_train
    res.Pnn.Training.history.Nn.Train.train_losses;
  check_golden_array "val loss" golden_val
    res.Pnn.Training.history.Nn.Train.val_losses;
  let actual_params =
    Array.concat
      (List.map
         (fun p -> T.to_array (A.value p))
         (Pnn.Network.params_theta net @ Pnn.Network.params_omega net))
  in
  check_golden_array "final params" golden_params actual_params

let () =
  Alcotest.run "inplace"
    [
      ( "tensor",
        [
          Alcotest.test_case "elementwise into bitwise" `Quick
            test_elementwise_into_bitwise;
          Alcotest.test_case "rowvec into bitwise" `Quick test_rowvec_into_bitwise;
          Alcotest.test_case "linalg into bitwise" `Quick test_linalg_into_bitwise;
          Alcotest.test_case "reductions/structure into bitwise" `Quick
            test_reduction_structure_into_bitwise;
          Alcotest.test_case "equal treats NaN as unequal" `Quick
            test_equal_nan_regression;
        ] );
      ( "training",
        [
          Alcotest.test_case "adam in-place bit-identical" `Quick
            test_adam_in_place_bitwise;
          Alcotest.test_case "tape refresh vs fresh graph" `Quick
            test_tape_refresh_bitwise;
          Alcotest.test_case "replica cache vs alloc replica" `Quick
            test_replica_cache_vs_alloc;
          Alcotest.test_case "fit golden trajectory" `Quick test_fit_golden_history;
        ] );
    ]
