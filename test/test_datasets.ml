(* Tests for the synthetic benchmark datasets. *)

module Sy = Datasets.Synth
module B13 = Datasets.Bench13

let small_spec =
  {
    Sy.name = "toy";
    features = 3;
    classes = 2;
    samples = 200;
    modes_per_class = 1;
    class_sep = 0.3;
    spread = 0.05;
    label_noise = 0.0;
    priors = None;
    seed = 99;
  }

let test_generate_shapes () =
  let d = Sy.generate small_spec in
  Alcotest.(check (pair int int)) "x shape" (200, 3) (Tensor.shape d.Sy.x);
  Alcotest.(check int) "y length" 200 (Array.length d.Sy.y);
  Array.iter
    (fun cls -> if cls < 0 || cls >= 2 then Alcotest.failf "class out of range: %d" cls)
    d.Sy.y

let test_features_in_unit_range () =
  let d = Sy.generate small_spec in
  Alcotest.(check bool) "min >= 0" true (Tensor.min_value d.Sy.x >= 0.0);
  Alcotest.(check bool) "max <= 1" true (Tensor.max_value d.Sy.x <= 1.0)

let test_deterministic () =
  let a = Sy.generate small_spec and b = Sy.generate small_spec in
  Alcotest.(check bool) "same x" true (Tensor.equal a.Sy.x b.Sy.x);
  Alcotest.(check (array int)) "same y" a.Sy.y b.Sy.y

let test_seed_changes_data () =
  let b = Sy.generate { small_spec with seed = 100 } in
  let a = Sy.generate small_spec in
  Alcotest.(check bool) "different data" false (Tensor.equal a.Sy.x b.Sy.x)

let test_separable_when_easy () =
  (* large separation + small spread: nearest-centroid accuracy near 1 *)
  let d = Sy.generate { small_spec with class_sep = 0.5; spread = 0.03 } in
  let counts = Sy.class_counts d in
  Alcotest.(check int) "all samples" 200 (Array.fold_left ( + ) 0 counts);
  (* centroid separation should dominate spread *)
  let c0 = Array.make 3 0.0 and c1 = Array.make 3 0.0 in
  let n0 = ref 0 and n1 = ref 0 in
  Array.iteri
    (fun i cls ->
      let tgt, n = if cls = 0 then (c0, n0) else (c1, n1) in
      incr n;
      for j = 0 to 2 do
        tgt.(j) <- tgt.(j) +. Tensor.get d.Sy.x i j
      done)
    d.Sy.y;
  let dist = ref 0.0 in
  for j = 0 to 2 do
    let a = c0.(j) /. float_of_int !n0 and b = c1.(j) /. float_of_int !n1 in
    dist := !dist +. ((a -. b) ** 2.0)
  done;
  Alcotest.(check bool) "classes separated" true (sqrt !dist > 0.3)

let test_priors_respected () =
  let d =
    Sy.generate { small_spec with priors = Some [| 0.8; 0.2 |]; samples = 2000 }
  in
  let counts = Sy.class_counts d in
  let frac = float_of_int counts.(0) /. 2000.0 in
  Alcotest.(check bool) "prior ~0.8" true (Float.abs (frac -. 0.8) < 0.05)

let test_label_noise_reduces_purity () =
  let clean = Sy.generate { small_spec with samples = 2000 } in
  let noisy = Sy.generate { small_spec with samples = 2000; label_noise = 0.3 } in
  let differs = ref 0 in
  Array.iteri (fun i c -> if c <> noisy.Sy.y.(i) then incr differs) clean.Sy.y;
  (* 30% randomized, half land on the other class (2 classes) -> ~15% flips *)
  let frac = float_of_int !differs /. 2000.0 in
  Alcotest.(check bool) "some flips" true (frac > 0.08 && frac < 0.25)

let test_validation_errors () =
  Alcotest.check_raises "classes" (Invalid_argument "Synth.generate: classes < 2")
    (fun () -> ignore (Sy.generate { small_spec with classes = 1 }));
  Alcotest.check_raises "label noise"
    (Invalid_argument "Synth.generate: label_noise outside [0,1]") (fun () ->
      ignore (Sy.generate { small_spec with label_noise = 2.0 }));
  Alcotest.check_raises "priors" (Invalid_argument "Synth.generate: priors length mismatch")
    (fun () -> ignore (Sy.generate { small_spec with priors = Some [| 1.0 |] }))

let test_one_hot () =
  let oh = Sy.one_hot ~n_classes:3 [| 0; 2; 1 |] in
  Alcotest.(check (pair int int)) "shape" (3, 3) (Tensor.shape oh);
  Alcotest.(check (float 0.0)) "row0" 1.0 (Tensor.get oh 0 0);
  Alcotest.(check (float 0.0)) "row1" 1.0 (Tensor.get oh 1 2);
  Alcotest.(check (float 0.0)) "row sums" 3.0 (Tensor.sum oh);
  Alcotest.check_raises "range" (Invalid_argument "Synth.one_hot: class out of range")
    (fun () -> ignore (Sy.one_hot ~n_classes:2 [| 2 |]))

let test_split_disjoint_and_covering () =
  let d = Sy.generate small_spec in
  let s = Sy.split (Rng.create 4) d in
  let n_train = Array.length s.Sy.y_train in
  let n_val = Array.length s.Sy.y_val in
  let n_test = Array.length s.Sy.y_test in
  Alcotest.(check int) "covers all" 200 (n_train + n_val + n_test);
  Alcotest.(check int) "60% train" 120 n_train;
  Alcotest.(check int) "20% val" 40 n_val

let test_split_bad_fractions () =
  let d = Sy.generate small_spec in
  Alcotest.check_raises "fractions" (Invalid_argument "Synth.split: bad fractions")
    (fun () -> ignore (Sy.split (Rng.create 1) ~fractions:(0.8, 0.3) d))

let test_bench13_complete () =
  Alcotest.(check int) "13 datasets" 13 (List.length B13.specs);
  (* paper Table II dimensions *)
  let check name features classes =
    let s = B13.find name in
    Alcotest.(check int) (name ^ " features") features s.Sy.features;
    Alcotest.(check int) (name ^ " classes") classes s.Sy.classes
  in
  check "iris" 4 3;
  check "pendigits" 16 10;
  check "tic-tac-toe" 9 2;
  check "vertebral-2c" 6 2;
  check "vertebral-3c" 6 3;
  check "breast-cancer-wisconsin" 9 2

let test_bench13_find_missing () =
  Alcotest.check_raises "missing" Not_found (fun () -> ignore (B13.find "nope"))

let test_bench13_loadable () =
  (* every dataset generates with the right sample count and scaled features *)
  List.iter
    (fun data ->
      let spec = data.Sy.spec in
      Alcotest.(check int) (spec.Sy.name ^ " samples") spec.Sy.samples
        (Array.length data.Sy.y);
      Alcotest.(check bool) (spec.Sy.name ^ " range") true
        (Tensor.min_value data.Sy.x >= 0.0 && Tensor.max_value data.Sy.x <= 1.0))
    (B13.load_all ())

let test_tic_tac_toe_majority () =
  (* calibrated to the paper's 0.63-ish majority baseline *)
  let d = B13.load "tic-tac-toe" in
  let m = Sy.majority_fraction d in
  Alcotest.(check bool) "majority around 0.65" true (m > 0.58 && m < 0.72)

let qcheck_split_preserves_samples =
  QCheck.Test.make ~name:"split partitions the data" ~count:50
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let d = Sy.generate { small_spec with seed } in
      let s = Sy.split (Rng.create seed) d in
      Array.length s.Sy.y_train + Array.length s.Sy.y_val + Array.length s.Sy.y_test
      = 200)

let () =
  Alcotest.run "datasets"
    [
      ( "synth",
        [
          Alcotest.test_case "shapes" `Quick test_generate_shapes;
          Alcotest.test_case "unit range" `Quick test_features_in_unit_range;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_data;
          Alcotest.test_case "separable when easy" `Quick test_separable_when_easy;
          Alcotest.test_case "priors" `Quick test_priors_respected;
          Alcotest.test_case "label noise" `Quick test_label_noise_reduces_purity;
          Alcotest.test_case "validation" `Quick test_validation_errors;
          Alcotest.test_case "one hot" `Quick test_one_hot;
          Alcotest.test_case "split partition" `Quick test_split_disjoint_and_covering;
          Alcotest.test_case "split fractions" `Quick test_split_bad_fractions;
          QCheck_alcotest.to_alcotest qcheck_split_preserves_samples;
        ] );
      ( "exact",
        [
          Alcotest.test_case "balance-scale matches UCI" `Quick (fun () ->
              let d = Datasets.Exact.balance_scale () in
              Alcotest.(check int) "625 instances" 625 (Array.length d.Sy.y);
              let c = Sy.class_counts d in
              Alcotest.(check (array int)) "L/B/R = 288/49/288" [| 288; 49; 288 |] c);
          Alcotest.test_case "balance-scale torque rule" `Quick (fun () ->
              let d = Datasets.Exact.balance_scale () in
              (* spot-check: decode features back to 1..5 and verify labels *)
              Array.iteri
                (fun i cls ->
                  let attr j = int_of_float ((Tensor.get d.Sy.x i j *. 4.0) +. 1.5) in
                  let left = attr 0 * attr 1 and right = attr 2 * attr 3 in
                  let expected = if left > right then 0 else if left = right then 1 else 2 in
                  if cls <> expected then Alcotest.failf "row %d mislabelled" i)
                d.Sy.y);
          Alcotest.test_case "tic-tac-toe matches UCI" `Quick (fun () ->
              let d = Datasets.Exact.tic_tac_toe () in
              Alcotest.(check int) "958 boards" 958 (Array.length d.Sy.y);
              let c = Sy.class_counts d in
              Alcotest.(check int) "626 positive" 626 c.(1);
              Alcotest.(check int) "332 negative" 332 c.(0));
          Alcotest.test_case "tic-tac-toe boards distinct" `Quick (fun () ->
              let d = Datasets.Exact.tic_tac_toe () in
              let seen = Hashtbl.create 1024 in
              for i = 0 to Array.length d.Sy.y - 1 do
                let row =
                  String.concat ","
                    (List.init 9 (fun j -> string_of_float (Tensor.get d.Sy.x i j)))
                in
                if Hashtbl.mem seen row then Alcotest.failf "duplicate board %d" i;
                Hashtbl.add seen row ()
              done);
          Alcotest.test_case "tic-tac-toe labels consistent" `Quick (fun () ->
              let d = Datasets.Exact.tic_tac_toe () in
              (* positive iff X (encoded 1.0) has a line *)
              let lines =
                [ (0,1,2); (3,4,5); (6,7,8); (0,3,6); (1,4,7); (2,5,8); (0,4,8); (2,4,6) ]
              in
              Array.iteri
                (fun i cls ->
                  let x_at j = Float.equal (Tensor.get d.Sy.x i j) 1.0 in
                  let xwins =
                    List.exists (fun (a, b, c) -> x_at a && x_at b && x_at c) lines
                  in
                  if (cls = 1) <> xwins then Alcotest.failf "board %d mislabelled" i)
                d.Sy.y);
          Alcotest.test_case "tic-tac-toe canonical row order" `Quick (fun () ->
              (* regression: rows are sorted on the unique base-3 board key,
                 not emitted in the DFS collection order, so the row order is
                 a property of the boards alone and repeat calls agree *)
              let d = Datasets.Exact.tic_tac_toe () in
              let decode v =
                if Float.equal v 1.0 then 1
                else if Float.equal v 0.0 then 2
                else 0
              in
              let key i =
                let k = ref 0 in
                for j = 0 to 8 do
                  k := (!k * 3) + decode (Tensor.get d.Sy.x i j)
                done;
                !k
              in
              let prev = ref (-1) in
              for i = 0 to Array.length d.Sy.y - 1 do
                let k = key i in
                if k <= !prev then Alcotest.failf "row %d out of key order" i;
                prev := k
              done;
              let d2 = Datasets.Exact.tic_tac_toe () in
              Alcotest.(check bool) "repeat call bit-identical features" true
                (Tensor.equal ~eps:0.0 d.Sy.x d2.Sy.x);
              Alcotest.(check (array int)) "repeat call identical labels"
                d.Sy.y d2.Sy.y);
          Alcotest.test_case "bench13 routes exact datasets" `Quick (fun () ->
              let d = B13.load "balance-scale" in
              Alcotest.(check (float 0.0)) "exact marker: zero spread" 0.0
                d.Sy.spec.Sy.spread);
        ] );
      ( "bench13",
        [
          Alcotest.test_case "complete" `Quick test_bench13_complete;
          Alcotest.test_case "find missing" `Quick test_bench13_find_missing;
          Alcotest.test_case "loadable" `Quick test_bench13_loadable;
          Alcotest.test_case "ttt majority" `Quick test_tic_tac_toe_majority;
        ] );
    ]
