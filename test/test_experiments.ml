(* Tests for the experiment harness (table/figure runners). *)

module E = Experiments

let test_report_cell () =
  Alcotest.(check string) "format" "0.821 ± 0.083" (E.Report.cell 0.8211 0.0829)

let test_report_table_aligned () =
  let s =
    E.Report.table ~header:[ "a"; "bb" ] ~rows:[ [ "xxx"; "y" ]; [ "z"; "wwww" ] ]
  in
  let lines = String.split_on_char '\n' s in
  (* header, separator, two rows, trailing empty *)
  Alcotest.(check int) "line count" 5 (List.length lines);
  match lines with
  | _ :: sep :: _ -> Alcotest.(check bool) "separator dashes" true (String.contains sep '-')
  | _ -> Alcotest.fail "missing separator"

let test_csv_escaping () =
  Alcotest.(check string) "quotes" "a,\"b,c\",\"d\"\"e\"" (E.Report.csv_line [ "a"; "b,c"; "d\"e" ])

let test_write_csv () =
  let path = Filename.temp_file "table" ".csv" in
  E.Report.write_csv ~path ~header:[ "x"; "y" ] ~rows:[ [ "1"; "2" ] ];
  let ic = open_in path in
  let l1 = input_line ic in
  let l2 = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "header" "x,y" l1;
  Alcotest.(check string) "row" "1,2" l2

let test_setup_arms () =
  Alcotest.(check int) "four arms" 4 (List.length E.Setup.arms);
  let names = List.map E.Setup.arm_name E.Setup.arms in
  Alcotest.(check bool) "distinct" true
    (List.length (List.sort_uniq String.compare names) = 4)

let test_setup_scales () =
  List.iter
    (fun name ->
      let s = E.Setup.of_name name in
      Alcotest.(check bool) (name ^ " has seeds") true (List.length s.E.Setup.seeds >= 1);
      Alcotest.(check (list (float 0.0)))
        (name ^ " epsilons") [ 0.05; 0.10 ] s.E.Setup.test_epsilons)
    [ "quick"; "committed"; "paper" ];
  match E.Setup.of_name "bogus" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected invalid scale"

let astring_contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_table1_mentions_all_params () =
  let s = E.Figures.render_table1 () in
  List.iter
    (fun p ->
      if not (astring_contains s p) then Alcotest.failf "table1 missing %s" p)
    [ "R1"; "R2"; "R3"; "R4"; "R5"; "W"; "L" ]

let test_fig2_curves () =
  let ptanh_curves, inv_curves = E.Figures.fig2_curves ~points:11 () in
  Alcotest.(check int) "five ptanh curves" 5 (List.length ptanh_curves);
  Alcotest.(check int) "five inv curves" 5 (List.length inv_curves);
  List.iter2
    (fun p i ->
      Alcotest.(check int) "points" 11 (Array.length p.E.Figures.vout);
      (* the negative-weight curve is the negated ptanh curve *)
      Array.iteri
        (fun k v ->
          Alcotest.(check (float 1e-12)) "negated" (-.v) i.E.Figures.vout.(k))
        p.E.Figures.vout)
    ptanh_curves inv_curves

let test_fig4_left () =
  let f = E.Figures.fig4_left ~points:21 () in
  Alcotest.(check int) "points" 21 (Array.length f.E.Figures.vin);
  Alcotest.(check bool) "good fit" true (f.E.Figures.rmse < 0.02);
  let rendered = E.Figures.render_fig4_left f in
  Alcotest.(check bool) "mentions eta" true (astring_contains rendered "eta")

(* A miniature end-to-end table2/table3 on one tiny dataset. *)
let mini_scale =
  {
    E.Setup.seeds = [ 1 ];
    test_epsilons = [ 0.05; 0.10 ];
    n_mc_test = 5;
    config =
      {
        Pnn.Config.default with
        Pnn.Config.max_epochs = 25;
        patience = 25;
        n_mc_train = 2;
        n_mc_val = 2;
      };
    init = `Centered;
    surrogate_samples = 250;
    surrogate_epochs = 150;
  }

let mini_dataset =
  Datasets.Synth.generate
    {
      Datasets.Synth.name = "mini";
      features = 3;
      classes = 2;
      samples = 80;
      modes_per_class = 1;
      class_sep = 0.3;
      spread = 0.06;
      label_noise = 0.0;
      priors = None;
      seed = 77;
    }

let surrogate =
  lazy
    (let dataset = Surrogate.Pipeline.generate_dataset ~n:250 () in
     fst
       (Surrogate.Pipeline.train_surrogate ~arch:[ 10; 8; 6; 4 ] ~max_epochs:150
          (Rng.create 42) dataset))

let table2_result =
  lazy (E.Table2.run ~datasets:[ mini_dataset ] mini_scale (Lazy.force surrogate))

let test_table2_structure () =
  let t = Lazy.force table2_result in
  Alcotest.(check int) "one row" 1 (List.length t.E.Table2.rows);
  let row = List.hd t.E.Table2.rows in
  Alcotest.(check string) "dataset name" "mini" row.E.Table2.dataset;
  Alcotest.(check int) "8 cells (4 arms x 2 eps)" 8 (List.length row.E.Table2.cells);
  List.iter
    (fun (_, cell) ->
      Alcotest.(check bool) "mean in [0,1]" true
        (cell.E.Table2.mean >= 0.0 && cell.E.Table2.mean <= 1.0);
      Alcotest.(check bool) "std >= 0" true (cell.E.Table2.std >= 0.0))
    row.E.Table2.cells

let test_table2_lookup () =
  let t = Lazy.force table2_result in
  let arm = { E.Setup.learnable = true; variation_aware = true } in
  let cell = E.Table2.cell_of t ~dataset:"mini" ~arm ~epsilon:0.05 in
  let avg = E.Table2.average_of t ~arm ~epsilon:0.05 in
  Alcotest.(check (float 1e-9)) "single dataset: average = cell" cell.E.Table2.mean
    avg.E.Table2.mean

let test_table2_render_and_csv () =
  let t = Lazy.force table2_result in
  let rendered = E.Table2.render t in
  Alcotest.(check bool) "renders dataset" true (astring_contains rendered "mini");
  Alcotest.(check bool) "renders average" true (astring_contains rendered "Average");
  let header, rows = E.Table2.to_csv_rows t in
  Alcotest.(check int) "csv columns" 17 (List.length header);
  Alcotest.(check int) "csv rows" 1 (List.length rows)

let test_table3_summary () =
  let t2 = Lazy.force table2_result in
  let t3 = E.Table3.of_table2 mini_scale t2 in
  Alcotest.(check int) "4 summary rows" 4 (List.length t3.E.Table3.rows);
  Alcotest.(check int) "2 claims" 2 (List.length t3.E.Table3.claims);
  List.iter
    (fun c ->
      Alcotest.(check bool) "contributions sum to 1" true
        (Float.abs
           (c.E.Table3.learnable_contribution +. c.E.Table3.va_contribution -. 1.0)
        < 1e-6))
    t3.E.Table3.claims;
  let rendered = E.Table3.render t3 in
  Alcotest.(check bool) "renders claims" true (astring_contains rendered "accuracy")

let test_lifetime_render () =
  let cell m s = { E.Table2.mean = m; std = s } in
  let t =
    {
      E.Lifetime.dataset = "toy";
      t_fracs = [ 0.0; 1.0 ];
      nominal_curve = [ (0.0, cell 0.8 0.01); (1.0, cell 0.6 0.05) ];
      aware_curve = [ (0.0, cell 0.78 0.01); (1.0, cell 0.75 0.02) ];
    }
  in
  let s = E.Lifetime.render t in
  Alcotest.(check bool) "mentions dataset" true (astring_contains s "toy");
  Alcotest.(check bool) "mentions aging-aware" true (astring_contains s "aging-aware")

let test_table2_determinism () =
  (* same scale + same dataset -> identical cells *)
  let t1 = Lazy.force table2_result in
  let t2 = E.Table2.run ~datasets:[ mini_dataset ] mini_scale (Lazy.force surrogate) in
  let arm = { E.Setup.learnable = false; variation_aware = false } in
  let c1 = E.Table2.cell_of t1 ~dataset:"mini" ~arm ~epsilon:0.05 in
  let c2 = E.Table2.cell_of t2 ~dataset:"mini" ~arm ~epsilon:0.05 in
  Alcotest.(check (float 1e-12)) "deterministic mean" c1.E.Table2.mean c2.E.Table2.mean;
  Alcotest.(check (float 1e-12)) "deterministic std" c1.E.Table2.std c2.E.Table2.std

let () =
  Alcotest.run "experiments"
    [
      ( "report",
        [
          Alcotest.test_case "cell" `Quick test_report_cell;
          Alcotest.test_case "table" `Quick test_report_table_aligned;
          Alcotest.test_case "csv escaping" `Quick test_csv_escaping;
          Alcotest.test_case "write csv" `Quick test_write_csv;
        ] );
      ( "setup",
        [
          Alcotest.test_case "arms" `Quick test_setup_arms;
          Alcotest.test_case "scales" `Quick test_setup_scales;
        ] );
      ( "figures",
        [
          Alcotest.test_case "table1" `Quick test_table1_mentions_all_params;
          Alcotest.test_case "fig2" `Quick test_fig2_curves;
          Alcotest.test_case "fig4 left" `Quick test_fig4_left;
        ] );
      ( "tables",
        [
          Alcotest.test_case "table2 structure" `Quick test_table2_structure;
          Alcotest.test_case "table2 lookup" `Quick test_table2_lookup;
          Alcotest.test_case "table2 render" `Quick test_table2_render_and_csv;
          Alcotest.test_case "table3 summary" `Quick test_table3_summary;
          Alcotest.test_case "table2 determinism" `Quick test_table2_determinism;
          Alcotest.test_case "lifetime render" `Quick test_lifetime_render;
        ] );
    ]
