(* Tests for the xoshiro256** generator. *)

let check_float = Alcotest.(check (float 1e-12))

let test_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.uint64 a) (Rng.uint64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 7 and b = Rng.create 8 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.uint64 a = Rng.uint64 b then incr same
  done;
  Alcotest.(check int) "different seeds give different streams" 0 !same

let test_float_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng in
    if v < 0.0 || v >= 1.0 then Alcotest.failf "float out of [0,1): %f" v
  done

let test_float_mean () =
  let rng = Rng.create 11 in
  let n = 50_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Rng.float rng
  done;
  let mean = !acc /. float_of_int n in
  if Float.abs (mean -. 0.5) > 0.01 then Alcotest.failf "uniform mean off: %f" mean

let test_uniform_bounds () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.uniform rng ~lo:(-2.0) ~hi:3.0 in
    if v < -2.0 || v >= 3.0 then Alcotest.failf "uniform out of range: %f" v
  done

let test_uniform_invalid () =
  let rng = Rng.create 5 in
  Alcotest.check_raises "hi < lo" (Invalid_argument "Rng.uniform: hi < lo") (fun () ->
      ignore (Rng.uniform rng ~lo:1.0 ~hi:0.0))

let test_int_range () =
  let rng = Rng.create 9 in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 10 in
    if v < 0 || v >= 10 then Alcotest.failf "int out of range: %d" v;
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c -> if c < 800 || c > 1200 then Alcotest.failf "bucket %d skewed: %d" i c)
    counts

let test_int_invalid () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "n <= 0" (Invalid_argument "Rng.int: n <= 0") (fun () ->
      ignore (Rng.int rng 0))

let test_normal_moments () =
  let rng = Rng.create 13 in
  let n = 50_000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let v = Rng.normal rng in
    sum := !sum +. v;
    sumsq := !sumsq +. (v *. v)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  if Float.abs mean > 0.02 then Alcotest.failf "normal mean off: %f" mean;
  if Float.abs (var -. 1.0) > 0.05 then Alcotest.failf "normal var off: %f" var

let test_gaussian_shift () =
  let rng = Rng.create 17 in
  let n = 20_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Rng.gaussian rng ~mu:5.0 ~sigma:0.1
  done;
  check_float "shifted mean" 5.0 (Float.round (!acc /. float_of_int n))

let test_perm_is_permutation () =
  let rng = Rng.create 19 in
  let p = Rng.perm rng 100 in
  let seen = Array.make 100 false in
  Array.iter
    (fun i ->
      if seen.(i) then Alcotest.failf "duplicate %d" i;
      seen.(i) <- true)
    p;
  Alcotest.(check bool) "all present" true (Array.for_all (fun b -> b) seen)

let test_shuffle_preserves_elements () =
  let rng = Rng.create 23 in
  let a = Array.init 50 (fun i -> i * 3) in
  let b = Array.copy a in
  Rng.shuffle rng b;
  let sa = Array.copy a and sb = Array.copy b in
  Array.sort Int.compare sa;
  Array.sort Int.compare sb;
  Alcotest.(check (array int)) "same multiset" sa sb

let test_split_independence () =
  let rng = Rng.create 29 in
  let child = Rng.split rng in
  (* child and parent should produce different streams *)
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.uint64 rng = Rng.uint64 child then incr same
  done;
  Alcotest.(check int) "split streams differ" 0 !same

let test_copy_diverges_from_original () =
  let rng = Rng.create 31 in
  (* pnnlint:allow R1 this test exercises Rng.copy's documented semantics *)
  let dup = Rng.copy rng in
  Alcotest.(check int64) "copies agree initially" (Rng.uint64 rng) (Rng.uint64 dup);
  ignore (Rng.uint64 rng);
  (* now streams are offset *)
  let a = Rng.uint64 rng and b = Rng.uint64 dup in
  Alcotest.(check bool) "offset copies differ" true (a <> b)

let qcheck_int_bounds =
  QCheck.Test.make ~name:"Rng.int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let v = Rng.int rng n in
      v >= 0 && v < n)

let qcheck_uniform_bounds =
  QCheck.Test.make ~name:"Rng.uniform stays in bounds" ~count:500
    QCheck.(triple small_int (float_range (-100.) 100.) (float_range 0.001 50.))
    (fun (seed, lo, width) ->
      let rng = Rng.create seed in
      let v = Rng.uniform rng ~lo ~hi:(lo +. width) in
      v >= lo && v < lo +. width)

let () =
  Alcotest.run "rng"
    [
      ( "basics",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "float mean" `Quick test_float_mean;
          Alcotest.test_case "uniform bounds" `Quick test_uniform_bounds;
          Alcotest.test_case "uniform invalid" `Quick test_uniform_invalid;
          Alcotest.test_case "int range" `Quick test_int_range;
          Alcotest.test_case "int invalid" `Quick test_int_invalid;
          Alcotest.test_case "normal moments" `Quick test_normal_moments;
          Alcotest.test_case "gaussian shift" `Quick test_gaussian_shift;
          Alcotest.test_case "perm" `Quick test_perm_is_permutation;
          Alcotest.test_case "shuffle" `Quick test_shuffle_preserves_elements;
          Alcotest.test_case "split" `Quick test_split_independence;
          Alcotest.test_case "copy" `Quick test_copy_diverges_from_original;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_int_bounds;
          QCheck_alcotest.to_alcotest qcheck_uniform_bounds;
        ] );
    ]
