(* Tests for the neural-network library. *)

module A = Autodiff
module T = Tensor

let rng () = Rng.create 7

let test_dense_shapes () =
  let d = Nn.Dense.create (rng ()) ~inputs:5 ~outputs:3 () in
  Alcotest.(check int) "inputs" 5 (Nn.Dense.inputs d);
  Alcotest.(check int) "outputs" 3 (Nn.Dense.outputs d);
  let x = A.const (T.ones 4 5) in
  let y = Nn.Dense.forward d x in
  Alcotest.(check (pair int int)) "output shape" (4, 3) (T.shape (A.value y))

let test_dense_forward_matches_tensor () =
  let d = Nn.Dense.create (rng ()) ~inputs:4 ~outputs:2 () in
  let x = T.uniform (rng ()) 3 4 ~lo:(-1.0) ~hi:1.0 in
  let via_ad = A.value (Nn.Dense.forward d (A.const x)) in
  let via_tensor = Nn.Dense.forward_tensor d x in
  Alcotest.(check bool) "paths agree" true (T.equal ~eps:1e-12 via_ad via_tensor)

let test_dense_snapshot_restore () =
  let d = Nn.Dense.create (rng ()) ~inputs:2 ~outputs:2 () in
  let snap = Nn.Dense.snapshot d in
  let original = T.get (A.value d.Nn.Dense.w) 0 0 in
  T.set (A.value d.Nn.Dense.w) 0 0 99.0;
  Nn.Dense.restore d snap;
  Alcotest.(check (float 0.0)) "restored" original (T.get (A.value d.Nn.Dense.w) 0 0)

let test_mlp_arch () =
  let m =
    Nn.Mlp.create (rng ()) ~sizes:[ 4; 8; 3 ] ~hidden:Nn.Activation.Tanh
      ~output:Nn.Activation.Linear
  in
  Alcotest.(check (list int)) "sizes" [ 4; 8; 3 ] (Nn.Mlp.sizes m);
  Alcotest.(check int) "params: 2 layers x (w, b)" 4 (List.length (Nn.Mlp.params m))

let test_mlp_create_invalid () =
  Alcotest.check_raises "too few sizes" (Invalid_argument "Mlp.create: need at least 2 sizes")
    (fun () ->
      ignore
        (Nn.Mlp.create (rng ()) ~sizes:[ 3 ] ~hidden:Nn.Activation.Tanh
           ~output:Nn.Activation.Linear))

let test_mlp_forward_consistency () =
  let m =
    Nn.Mlp.create (rng ()) ~sizes:[ 3; 5; 5; 2 ] ~hidden:Nn.Activation.Tanh
      ~output:Nn.Activation.Sigmoid
  in
  let x = T.uniform (rng ()) 6 3 ~lo:(-2.0) ~hi:2.0 in
  let a = A.value (Nn.Mlp.forward m (A.const x)) in
  let b = Nn.Mlp.forward_tensor m x in
  let c = A.value (Nn.Mlp.forward_frozen m (A.const x)) in
  Alcotest.(check bool) "ad = tensor" true (T.equal ~eps:1e-12 a b);
  Alcotest.(check bool) "frozen = tensor" true (T.equal ~eps:1e-12 c b)

let test_mlp_frozen_only_input_grads () =
  let m =
    Nn.Mlp.create (rng ()) ~sizes:[ 3; 4; 2 ] ~hidden:Nn.Activation.Tanh
      ~output:Nn.Activation.Linear
  in
  let x = A.param (T.uniform (rng ()) 2 3 ~lo:(-1.0) ~hi:1.0) in
  let loss = A.sum (Nn.Mlp.forward_frozen m x) in
  A.backward loss;
  let gx = T.sum (T.map Float.abs (A.grad x)) in
  Alcotest.(check bool) "input grad flows" true (gx > 1e-9);
  (* weight leaves are bypassed: their gradients stay zero *)
  List.iter
    (fun p ->
      Alcotest.(check (float 0.0)) "weight grad zero" 0.0
        (T.sum (T.map Float.abs (A.grad p))))
    (Nn.Mlp.params m)

let test_mlp_serialization_roundtrip () =
  let m =
    Nn.Mlp.create (rng ()) ~sizes:[ 4; 6; 3 ] ~hidden:Nn.Activation.Relu
      ~output:Nn.Activation.Linear
  in
  let lines = Nn.Mlp.to_lines m in
  let m', rest = Nn.Mlp.of_lines lines in
  Alcotest.(check int) "no leftovers" 0 (List.length rest);
  Alcotest.(check (list int)) "same arch" (Nn.Mlp.sizes m) (Nn.Mlp.sizes m');
  let x = T.uniform (rng ()) 3 4 ~lo:(-1.0) ~hi:1.0 in
  Alcotest.(check bool) "same function" true
    (T.equal ~eps:0.0 (Nn.Mlp.forward_tensor m x) (Nn.Mlp.forward_tensor m' x))

let test_mlp_of_lines_bad_header () =
  match Nn.Mlp.of_lines [ "bogus" ] with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected failure"

let test_activation_of_string () =
  Alcotest.(check bool) "tanh" true (Nn.Activation.of_string "tanh" = Nn.Activation.Tanh);
  match Nn.Activation.of_string "nope" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected invalid_arg"

let optimizer_converges opt_factory tol steps =
  let target = T.of_array [| 1.0; -2.0; 0.5 |] in
  let p = A.param (T.zeros 1 3) in
  let opt = opt_factory () in
  for _ = 1 to steps do
    let loss = A.mse p target in
    A.backward loss;
    Nn.Optimizer.step opt [ p ]
  done;
  let err = T.sum (T.map Float.abs (T.sub (A.value p) target)) in
  if err > tol then Alcotest.failf "did not converge: residual %f" err

let test_sgd_converges () = optimizer_converges (fun () -> Nn.Optimizer.sgd ~lr:0.3) 1e-3 500
let test_adam_converges () =
  optimizer_converges (fun () -> Nn.Optimizer.adam ~lr:0.05 ()) 1e-3 800

let test_optimizer_rejects_const () =
  let opt = Nn.Optimizer.sgd ~lr:0.1 in
  let c = A.const (T.zeros 1 1) in
  Alcotest.check_raises "const" (Invalid_argument "Optimizer.step: node is not a parameter")
    (fun () -> Nn.Optimizer.step opt [ c ])

let test_optimizer_lr_mutation () =
  let opt = Nn.Optimizer.sgd ~lr:0.1 in
  Nn.Optimizer.set_lr opt 0.5;
  Alcotest.(check (float 0.0)) "lr updated" 0.5 (Nn.Optimizer.lr opt)

let test_adam_state_distinct_per_param () =
  (* two params with different gradient histories must not share moments *)
  let p1 = A.param (T.zeros 1 1) and p2 = A.param (T.zeros 1 1) in
  let opt = Nn.Optimizer.adam ~lr:0.1 () in
  for _ = 1 to 50 do
    let loss = A.add (A.mse p1 (T.scalar 1.0)) (A.mse p2 (T.scalar (-1.0))) in
    A.backward (A.sum loss);
    Nn.Optimizer.step opt [ p1; p2 ]
  done;
  Alcotest.(check bool) "p1 toward +1" true (T.get (A.value p1) 0 0 > 0.5);
  Alcotest.(check bool) "p2 toward -1" true (T.get (A.value p2) 0 0 < -0.5)

let test_adam_state_lines_order_independent () =
  (* regression: [state_lines] addresses the moment tables positionally by the
     params list, so the Hashtbl insertion order (i.e. which param happened to
     be stepped into the table first) must not leak into the serialization *)
  let mk () = A.param (T.zeros 1 1) in
  let p1 = mk () and p2 = mk () and q1 = mk () and q2 = mk () in
  let opt_a = Nn.Optimizer.adam ~lr:0.1 () in
  let opt_b = Nn.Optimizer.adam ~lr:0.1 () in
  for _ = 1 to 5 do
    A.backward
      (A.sum (A.add (A.mse p1 (T.scalar 1.0)) (A.mse p2 (T.scalar 1.0))));
    Nn.Optimizer.step opt_a [ p1; p2 ];
    A.backward
      (A.sum (A.add (A.mse q1 (T.scalar 1.0)) (A.mse q2 (T.scalar 1.0))));
    (* same gradient histories, opposite first-step (insertion) order *)
    Nn.Optimizer.step opt_b [ q2; q1 ]
  done;
  Alcotest.(check (list string))
    "serialized state independent of table insertion order"
    (Nn.Optimizer.state_lines opt_a [ p1; p2 ])
    (Nn.Optimizer.state_lines opt_b [ q1; q2 ])

(* End-to-end: XOR with a small MLP. *)
let test_train_xor () =
  let x = T.of_arrays [| [| 0.; 0. |]; [| 0.; 1. |]; [| 1.; 0. |]; [| 1.; 1. |] |] in
  let y = T.of_arrays [| [| 1.; 0. |]; [| 0.; 1. |]; [| 0.; 1. |]; [| 1.; 0. |] |] in
  let m =
    Nn.Mlp.create (Rng.create 3) ~sizes:[ 2; 8; 2 ] ~hidden:Nn.Activation.Tanh
      ~output:Nn.Activation.Linear
  in
  let params = Nn.Mlp.params m in
  let opt = Nn.Optimizer.adam ~lr:0.05 () in
  let best = ref (Nn.Mlp.snapshot m) in
  let xc = A.const x in
  let _history =
    Nn.Train.run
      ~config:{ Nn.Train.default_config with max_epochs = 2000; patience = 2000 }
      ~optimizers:[ (opt, params) ]
      ~train_loss:(fun () -> A.softmax_cross_entropy ~logits:(Nn.Mlp.forward m xc) ~labels:y)
      ~val_loss:(fun () -> Nn.Metrics.mse (Nn.Mlp.forward_tensor m x) y)
      ~snapshot:(fun () -> best := Nn.Mlp.snapshot m)
      ~restore:(fun () -> Nn.Mlp.restore m !best)
      ()
  in
  let acc = Nn.Metrics.accuracy ~logits:(Nn.Mlp.forward_tensor m x) ~labels:y in
  Alcotest.(check (float 0.0)) "xor solved" 1.0 acc

let test_early_stopping_triggers () =
  let p = A.param (T.zeros 1 1) in
  let opt = Nn.Optimizer.sgd ~lr:0.0 in
  let history =
    Nn.Train.run
      ~config:{ Nn.Train.default_config with max_epochs = 1000; patience = 7 }
      ~optimizers:[ (opt, [ p ]) ]
      ~train_loss:(fun () -> A.mse p (T.ones 1 1))
      ~val_loss:(fun () -> 1.0)
      ~snapshot:(fun () -> ())
      ~restore:(fun () -> ())
      ()
  in
  Alcotest.(check bool) "stopped early" true history.Nn.Train.stopped_early;
  Alcotest.(check bool) "ran few epochs" true
    (Array.length history.Nn.Train.train_losses <= 10)

let test_train_restores_best () =
  (* train loss explodes after a good start: restored weights must be the
     best-validation ones, not the last *)
  let p = A.param (T.scalar 0.0) in
  let opt = Nn.Optimizer.sgd ~lr:0.4 in
  let epoch = ref 0 in
  let _ =
    Nn.Train.run
      ~config:{ Nn.Train.default_config with max_epochs = 20; patience = 50 }
      ~optimizers:[ (opt, [ p ]) ]
      ~train_loss:(fun () ->
        incr epoch;
        (* moving target pushes p away after epoch 5 *)
        let target = if !epoch <= 5 then 1.0 else 50.0 in
        A.mse p (T.scalar target))
      ~val_loss:(fun () ->
        let v = T.get (A.value p) 0 0 in
        (v -. 1.0) *. (v -. 1.0))
      ~snapshot:(fun () -> ())
      ~restore:(fun () -> ())
      ()
  in
  ()

let test_metrics_accuracy () =
  let logits = T.of_arrays [| [| 0.9; 0.1 |]; [| 0.2; 0.8 |]; [| 0.6; 0.4 |] |] in
  let labels = T.of_arrays [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |]; [| 0.0; 1.0 |] |] in
  Alcotest.(check (float 1e-9)) "2/3" (2.0 /. 3.0) (Nn.Metrics.accuracy ~logits ~labels)

let test_metrics_r2_perfect () =
  let t = T.of_array [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check (float 1e-9)) "r2 = 1" 1.0 (Nn.Metrics.r2 ~pred:t ~target:t)

let test_metrics_confusion () =
  let logits = T.of_arrays [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let m = Nn.Metrics.confusion ~logits ~labels:[| 0; 1; 1 |] ~n_classes:2 in
  Alcotest.(check int) "tp class0" 1 m.(0).(0);
  Alcotest.(check int) "confusion 1->0" 1 m.(1).(0);
  Alcotest.(check int) "tp class1" 1 m.(1).(1)

let test_metrics_confusion_length_mismatch () =
  let logits = T.of_arrays [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  (* shorter labels used to raise Index out of bounds; longer labels were
     silently truncated — both must be rejected up front *)
  Alcotest.check_raises "short labels"
    (Invalid_argument "Metrics.confusion: row count mismatch") (fun () ->
      ignore (Nn.Metrics.confusion ~logits ~labels:[| 0; 1 |] ~n_classes:2));
  Alcotest.check_raises "long labels"
    (Invalid_argument "Metrics.confusion: row count mismatch") (fun () ->
      ignore (Nn.Metrics.confusion ~logits ~labels:[| 0; 1; 1; 0 |] ~n_classes:2))

let test_init_ranges () =
  let w = Nn.Init.tensor (rng ()) Nn.Init.Xavier ~inputs:10 ~outputs:10 in
  let bound = sqrt (6.0 /. 20.0) +. 1e-9 in
  Alcotest.(check bool) "xavier bounded" true
    (T.min_value w >= -.bound && T.max_value w <= bound);
  let u = Nn.Init.tensor (rng ()) (Nn.Init.Uniform 0.1) ~inputs:5 ~outputs:5 in
  Alcotest.(check bool) "uniform bounded" true (T.min_value u >= -0.1 && T.max_value u <= 0.1)

let () =
  Alcotest.run "nn"
    [
      ( "dense+mlp",
        [
          Alcotest.test_case "dense shapes" `Quick test_dense_shapes;
          Alcotest.test_case "dense paths agree" `Quick test_dense_forward_matches_tensor;
          Alcotest.test_case "dense snapshot" `Quick test_dense_snapshot_restore;
          Alcotest.test_case "mlp arch" `Quick test_mlp_arch;
          Alcotest.test_case "mlp invalid" `Quick test_mlp_create_invalid;
          Alcotest.test_case "mlp consistency" `Quick test_mlp_forward_consistency;
          Alcotest.test_case "mlp frozen grads" `Quick test_mlp_frozen_only_input_grads;
          Alcotest.test_case "mlp serialization" `Quick test_mlp_serialization_roundtrip;
          Alcotest.test_case "mlp bad header" `Quick test_mlp_of_lines_bad_header;
          Alcotest.test_case "activation names" `Quick test_activation_of_string;
          Alcotest.test_case "init ranges" `Quick test_init_ranges;
        ] );
      ( "optimizers",
        [
          Alcotest.test_case "sgd converges" `Quick test_sgd_converges;
          Alcotest.test_case "adam converges" `Quick test_adam_converges;
          Alcotest.test_case "rejects const" `Quick test_optimizer_rejects_const;
          Alcotest.test_case "lr mutation" `Quick test_optimizer_lr_mutation;
          Alcotest.test_case "adam distinct state" `Quick test_adam_state_distinct_per_param;
          Alcotest.test_case "adam state order independent" `Quick
            test_adam_state_lines_order_independent;
        ] );
      ( "training",
        [
          Alcotest.test_case "xor" `Quick test_train_xor;
          Alcotest.test_case "early stopping" `Quick test_early_stopping_triggers;
          Alcotest.test_case "restores best" `Quick test_train_restores_best;
          Alcotest.test_case "accuracy" `Quick test_metrics_accuracy;
          Alcotest.test_case "r2" `Quick test_metrics_r2_perfect;
          Alcotest.test_case "confusion" `Quick test_metrics_confusion;
          Alcotest.test_case "confusion length mismatch" `Quick
            test_metrics_confusion_length_mismatch;
        ] );
    ]
