(* Cross-backend kernel agreement suite.

   The reference backend is the bit-identity oracle; every fast backend
   (bigarray and the C-stub backend) must agree with it bit-for-bit on
   every per-element kernel and within 1e-12 relative error on the
   re-associated matmul family.  Each check builds its inputs *inside* the
   backend under test so the whole computation stays homogeneous;
   mixed-storage behavior gets its own test. *)

module T = Tensor

let fast_backends = [ T.Bigarray64; T.C64 ]
let all_backends = T.Reference :: fast_backends

let with_backend b f =
  let prev = T.backend () in
  T.set_backend b;
  Fun.protect ~finally:(fun () -> T.set_backend prev) f

(* Deterministic "interesting" data: mixed signs and magnitudes, exact
   zeros, values spanning several binades. *)
let mk rows cols seed =
  T.init rows cols (fun r c ->
      let i = (r * cols) + c + (seed * 7919) in
      let h = (i * 2654435761) land 0xffff in
      (float_of_int h /. 655.36) -. 50.0)

(* Strictly positive variant for log / sqrt / div denominators. *)
let mk_pos rows cols seed =
  T.init rows cols (fun r c ->
      let i = (r * cols) + c + (seed * 104729) in
      let h = (i * 2654435761) land 0xffff in
      (float_of_int h /. 6553.6) +. 0.125)

let bits = Int64.bits_of_float

let check_bits ~what a b =
  if Array.length a <> Array.length b then
    Alcotest.failf "%s: length %d vs %d" what (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      let y = b.(i) in
      if not (Int64.equal (bits x) (bits y)) then
        Alcotest.failf "%s: index %d: %h vs %h (bitwise)" what i x y)
    a

let check_close ~what a b =
  if Array.length a <> Array.length b then
    Alcotest.failf "%s: length %d vs %d" what (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      let y = b.(i) in
      let same_bits = Int64.equal (bits x) (bits y) in
      let denom = Float.max 1.0 (Float.max (Float.abs x) (Float.abs y)) in
      if (not same_bits) && not (Float.abs (x -. y) /. denom <= 1e-12) then
        Alcotest.failf "%s: index %d: %h vs %h (rel err > 1e-12)" what i x y)
    a

(* Run [f : unit -> float array] on every backend and compare each fast
   backend against the reference oracle. *)
let agree ?(exact = true) what f =
  let r = with_backend T.Reference f in
  List.iter
    (fun be ->
      let b = with_backend be f in
      let what = Printf.sprintf "%s [%s]" what (T.backend_name be) in
      (if exact then check_bits else check_close) ~what r b)
    fast_backends

let shapes = [ (0, 0); (0, 3); (1, 1); (1, 7); (5, 1); (3, 4); (7, 5); (8, 8); (33, 17) ]

let test_elementwise () =
  List.iter
    (fun (r, c) ->
      let tag op = Printf.sprintf "%s %dx%d" op r c in
      agree (tag "add") (fun () ->
          T.to_array (T.add (mk r c 1) (mk r c 2)));
      agree (tag "sub") (fun () ->
          T.to_array (T.sub (mk r c 1) (mk r c 2)));
      agree (tag "mul") (fun () ->
          T.to_array (T.mul (mk r c 1) (mk r c 2)));
      agree (tag "div") (fun () ->
          T.to_array (T.div (mk r c 1) (mk_pos r c 2)));
      agree (tag "neg") (fun () -> T.to_array (T.neg (mk r c 1)));
      agree (tag "scale") (fun () -> T.to_array (T.scale 1.7 (mk r c 1)));
      agree (tag "add_scalar") (fun () ->
          T.to_array (T.add_scalar (-3.25) (mk r c 1)));
      agree (tag "clamp") (fun () ->
          T.to_array (T.clamp ~lo:(-20.0) ~hi:20.0 (mk r c 1)));
      agree (tag "map") (fun () ->
          T.to_array (T.map (fun x -> (x *. x) -. 1.0) (mk r c 1)));
      agree (tag "map2") (fun () ->
          T.to_array
            (T.map2 (fun x y -> Float.min x y) (mk r c 1) (mk r c 2)));
      agree (tag "transpose") (fun () -> T.to_array (T.transpose (mk r c 1)));
      agree (tag "fill+blit") (fun () ->
          let d = T.zeros r c in
          T.fill d 2.5;
          let e = T.zeros r c in
          T.blit ~src:d ~dst:e;
          T.to_array e);
      if r > 0 && c > 0 then begin
        agree (tag "add_rowvec") (fun () ->
            T.to_array (T.add_rowvec (mk r c 1) (mk 1 c 2)));
        agree (tag "mul_rowvec") (fun () ->
            T.to_array (T.mul_rowvec (mk r c 1) (mk 1 c 2)));
        agree (tag "add_colvec") (fun () ->
            T.to_array (T.add_colvec (mk r c 1) (mk r 1 2)));
        agree (tag "mul_colvec") (fun () ->
            T.to_array (T.mul_colvec (mk r c 1) (mk r 1 2)));
        agree (tag "div_colvec") (fun () ->
            T.to_array (T.div_colvec (mk r c 1) (mk_pos r 1 2)));
        agree (tag "broadcast_rowvec_into") (fun () ->
            let d = T.zeros r c in
            T.broadcast_rowvec_into (mk 1 c 3) ~dst:d;
            T.to_array d)
      end)
    shapes

let test_reductions () =
  List.iter
    (fun (r, c) ->
      if r > 0 && c > 0 then begin
        let tag op = Printf.sprintf "%s %dx%d" op r c in
        agree (tag "sum") (fun () -> [| T.sum (mk r c 1) |]);
        agree (tag "mean") (fun () -> [| T.mean (mk r c 1) |]);
        agree (tag "min_value") (fun () -> [| T.min_value (mk r c 1) |]);
        agree (tag "max_value") (fun () -> [| T.max_value (mk r c 1) |]);
        agree (tag "sum_rows") (fun () -> T.to_array (T.sum_rows (mk r c 1)));
        agree (tag "sum_cols") (fun () -> T.to_array (T.sum_cols (mk r c 1)));
        agree (tag "dot") (fun () -> [| T.dot (mk r c 1) (mk r c 2) |]);
        agree (tag "argmax_rows") (fun () ->
            Array.map float_of_int (T.argmax_rows (mk r c 1)))
      end)
    shapes

(* n < 8 exercises the scalar remainder column loop; n = 8/16 the pure
   8-wide register tile; n = 9/17 tile + remainder.  Zero-sized operands
   must come out as (correctly-shaped) empties. *)
let matmul_triples =
  [
    (1, 1, 1); (2, 3, 4); (4, 4, 8); (3, 5, 9); (5, 7, 16); (6, 2, 17);
    (33, 17, 7); (8, 8, 8); (0, 3, 4); (3, 0, 4); (3, 4, 0);
  ]

let test_matmul_family () =
  List.iter
    (fun (m, k, n) ->
      let tag op = Printf.sprintf "%s %dx%dx%d" op m k n in
      agree ~exact:false (tag "matmul") (fun () ->
          T.to_array (T.matmul (mk m k 1) (mk k n 2)));
      agree ~exact:false (tag "matmul_nt") (fun () ->
          T.to_array (T.matmul_nt (mk m k 1) (mk n k 2)));
      agree ~exact:false (tag "matmul_into") (fun () ->
          let d = T.ones m n in
          T.matmul_into (mk m k 1) (mk k n 2) ~dst:d;
          T.to_array d))
    matmul_triples

let test_assembly () =
  agree "concat_cols" (fun () ->
      T.to_array (T.concat_cols (mk 5 3 1) (mk 5 4 2)));
  agree "concat_rows" (fun () ->
      T.to_array (T.concat_rows (mk 2 6 1) (mk 3 6 2)));
  agree "slice_rows" (fun () -> T.to_array (T.slice_rows (mk 9 4 1) 2 5));
  agree "slice_cols" (fun () -> T.to_array (T.slice_cols (mk 4 9 1) 3 4));
  agree "take_rows" (fun () ->
      T.to_array (T.take_rows (mk 8 3 1) [| 7; 0; 3; 3 |]));
  agree "row" (fun () -> T.to_array (T.row (mk 6 5 1) 4));
  agree "embed_cols_into" (fun () ->
      let d = T.ones 4 9 in
      T.embed_cols_into (mk 4 3 1) 2 ~dst:d;
      T.to_array d);
  agree "embed_rows_into" (fun () ->
      let d = T.ones 9 4 in
      T.embed_rows_into (mk 3 4 1) 5 ~dst:d;
      T.to_array d);
  agree "concat_cols_into" (fun () ->
      let d = T.zeros 5 7 in
      T.concat_cols_into (mk 5 3 1) (mk 5 4 2) ~dst:d;
      T.to_array d);
  agree "concat_rows_into" (fun () ->
      let d = T.zeros 5 6 in
      T.concat_rows_into (mk 2 6 1) (mk 3 6 2) ~dst:d;
      T.to_array d)

let all_unops = [ T.Tanh; T.Sigmoid; T.Exp; T.Log; T.Sqrt; T.Relu; T.Abs ]

let unop_name = function
  | T.Tanh -> "tanh"
  | T.Sigmoid -> "sigmoid"
  | T.Exp -> "exp"
  | T.Log -> "log"
  | T.Sqrt -> "sqrt"
  | T.Relu -> "relu"
  | T.Abs -> "abs"

let test_training_kernels () =
  List.iter
    (fun op ->
      let input r c s =
        match op with
        | T.Log | T.Sqrt -> mk_pos r c s
        | T.Exp -> T.scale 0.05 (mk r c s)  (* keep exp in range *)
        | _ -> mk r c s
      in
      agree ("unop " ^ unop_name op) (fun () ->
          let x = input 6 9 1 in
          let y = T.zeros_as x 6 9 in
          T.unop_into op x ~dst:y;
          T.to_array y);
      agree ("unop_bwd " ^ unop_name op) (fun () ->
          let x = input 6 9 1 in
          let y = T.zeros_as x 6 9 in
          T.unop_into op x ~dst:y;
          let g = mk 6 9 2 in
          let d = T.zeros_as x 6 9 in
          T.unop_bwd_into op ~x ~y ~g ~dst:d;
          T.to_array d))
    all_unops;
  agree "softmax_rows_into" (fun () ->
      let x = T.scale 0.1 (mk 7 5 1) in
      let d = T.zeros_as x 7 5 in
      T.softmax_rows_into x ~dst:d;
      T.to_array d);
  agree "ce_loss_sum" (fun () ->
      let logits = T.scale 0.1 (mk 7 5 1) in
      let probs = T.zeros_as logits 7 5 in
      T.softmax_rows_into logits ~dst:probs;
      let labels = T.init 7 5 (fun r c -> if c = r mod 5 then 1.0 else 0.0) in
      [| T.ce_loss_sum probs labels |]);
  agree "sgd_step" (fun () ->
      let v = mk 4 6 1 in
      T.sgd_step ~lr:0.03 ~grad:(mk 4 6 2) v;
      T.to_array v);
  agree "adam_step" (fun () ->
      let v = mk 4 6 1 in
      let m = Array.make 24 0.01 and s = Array.make 24 0.02 in
      T.adam_step ~lr:0.01 ~beta1:0.9 ~beta2:0.999 ~eps:1e-8 ~bc1:0.1
        ~bc2:0.001 ~m ~v:s ~grad:(mk 4 6 2) v;
      Array.concat [ T.to_array v; m; s ])

let test_rng_constructors () =
  agree "uniform" (fun () ->
      T.to_array (T.uniform (Rng.create 42) 6 7 ~lo:(-2.0) ~hi:3.0));
  agree "gaussian" (fun () ->
      T.to_array (T.gaussian (Rng.create 43) 6 7 ~mu:0.5 ~sigma:2.0))

(* {2 NaN and signed-zero edge semantics — satellite 1} *)

let nan_row () = T.of_array [| Float.nan; -0.0; 0.0; 1.0; -1.0 |]

let test_clamp_nan_passthrough () =
  List.iter
    (fun be ->
      with_backend be (fun () ->
          let c = T.clamp ~lo:(-0.5) ~hi:0.5 (nan_row ()) in
          if not (Float.is_nan (T.get c 0 0)) then
            Alcotest.failf "%s: clamp snapped NaN to %h" (T.backend_name be)
              (T.get c 0 0);
          let d = T.zeros 1 5 in
          T.clamp_into ~lo:(-0.5) ~hi:0.5 (nan_row ()) ~dst:d;
          if not (Float.is_nan (T.get d 0 0)) then
            Alcotest.failf "%s: clamp_into snapped NaN" (T.backend_name be)))
    all_backends;
  agree "clamp nan/-0.0" (fun () ->
      T.to_array (T.clamp ~lo:(-0.5) ~hi:0.5 (nan_row ())))

let test_minmax_argmax_edges () =
  (* NaN accumulator propagates; NaN element is skipped; -0.0 vs 0.0 keeps
     the first encountered.  Both backends must agree bitwise. *)
  let cases =
    [
      ("nan first", [| Float.nan; 3.0; -7.0 |]);
      ("nan middle", [| 3.0; Float.nan; -7.0 |]);
      ("neg zero first", [| -0.0; 0.0; 0.0 |]);
      ("pos zero first", [| 0.0; -0.0; -0.0 |]);
      ("plain", [| 4.0; -2.0; 9.0; 9.0 |]);
    ]
  in
  List.iter
    (fun (name, data) ->
      agree ("min " ^ name) (fun () ->
          [| T.min_value (T.of_array (Array.copy data)) |]);
      agree ("max " ^ name) (fun () ->
          [| T.max_value (T.of_array (Array.copy data)) |]);
      agree ("argmax " ^ name) (fun () ->
          Array.map float_of_int
            (T.argmax_rows (T.of_array (Array.copy data)))))
    cases;
  (* a leading NaN is an incumbent nothing displaces *)
  List.iter
    (fun be ->
      with_backend be (fun () ->
          let am = T.argmax_rows (T.of_array [| Float.nan; 99.0 |]) in
          Alcotest.(check int)
            (T.backend_name be ^ ": argmax of leading-NaN row")
            0 am.(0)))
    all_backends

(* {2 Determinism within a backend} *)

let pipeline () =
  let a = mk 6 9 3 and b = mk 9 17 4 in
  let m = T.matmul a b in
  let t = T.zeros_as m 6 17 in
  T.unop_into T.Tanh m ~dst:t;
  let s = T.zeros_as t 6 17 in
  T.softmax_rows_into t ~dst:s;
  Array.concat [ T.to_array s; T.to_array (T.sum_cols s) ]

let test_within_backend_determinism () =
  List.iter
    (fun be ->
      let x = with_backend be pipeline in
      let y = with_backend be pipeline in
      check_bits ~what:(T.backend_name be ^ " repeat run") x y;
      let checked =
        with_backend be (fun () ->
            let prev = T.checked () in
            T.set_checked true;
            Fun.protect ~finally:(fun () -> T.set_checked prev) pipeline)
      in
      check_bits ~what:(T.backend_name be ^ " checked vs unchecked") x checked)
    all_backends

(* {2 Mixed-storage operands} *)

let test_mixed_storage () =
  let pure =
    with_backend T.Reference (fun () ->
        let a = mk 5 7 1 and b = mk 5 7 2 in
        T.to_array (T.add a b))
  in
  List.iter
    (fun fast ->
      let mixed =
        with_backend T.Reference (fun () ->
            let a = mk 5 7 1 in
            with_backend fast (fun () ->
                let b = mk 5 7 2 in
                let sum = T.add a b in
                (* result follows the first operand's backend *)
                if T.backend_of sum <> T.Reference then
                  Alcotest.failf "mixed add (ref, %s) did not follow first operand"
                    (T.backend_name fast);
                T.to_array sum))
      in
      check_bits
        ~what:(Printf.sprintf "mixed add (ref, %s) = reference add" (T.backend_name fast))
        pure mixed)
    fast_backends;
  let pure_mm =
    with_backend T.Reference (fun () ->
        T.to_array (T.matmul (mk 4 6 1) (mk 6 9 2)))
  in
  let mixed_mm fast =
    with_backend fast (fun () ->
        let b = mk 6 9 2 in
        with_backend T.Reference (fun () ->
            let a = mk 4 6 1 in
            T.to_array (T.matmul a b)))
  in
  (* mixed operands fall back to the reference kernels: bit-identical *)
  List.iter
    (fun fast ->
      check_bits
        ~what:(Printf.sprintf "mixed matmul (%s, ref) = reference matmul" (T.backend_name fast))
        pure_mm (mixed_mm fast))
    fast_backends;
  (* bigarray-meets-C is also mixed storage (distinct backends even though
     both are flat float64 buffers): reference-kernel fallback, bitwise *)
  let ba_c_mm =
    with_backend T.C64 (fun () ->
        let b = mk 6 9 2 in
        with_backend T.Bigarray64 (fun () ->
            let a = mk 4 6 1 in
            let r = T.matmul a b in
            if T.backend_of r <> T.Bigarray64 then
              Alcotest.fail "mixed (ba, c) matmul did not follow first operand";
            T.to_array r))
  in
  check_bits ~what:"mixed matmul (ba, c) = reference matmul" pure_mm ba_c_mm

(* {2 Construction / surface} *)

(* Regression for the selection representation: [set_backend]/[set_checked]
   are Atomics, so a write made inside one domain is visible to another as
   soon as the writer is joined. *)
let test_selection_atomic_across_domains () =
  let prev_b = T.backend () and prev_c = T.checked () in
  Fun.protect ~finally:(fun () ->
      T.set_backend prev_b;
      T.set_checked prev_c)
  @@ fun () ->
  Domain.join
    (Domain.spawn (fun () ->
         T.set_backend T.Bigarray64;
         T.set_checked true));
  Alcotest.(check string)
    "backend set by a joined domain is visible" "bigarray"
    (T.backend_name (T.backend ()));
  Alcotest.(check bool) "checked flag set by a joined domain is visible" true
    (T.checked ());
  (* and the other direction: our write is visible inside a fresh domain *)
  T.set_backend T.C64;
  T.set_checked false;
  let seen =
    Domain.join (Domain.spawn (fun () -> (T.backend (), T.checked ())))
  in
  Alcotest.(check string)
    "backend visible inside a fresh domain" "c"
    (T.backend_name (fst seen));
  Alcotest.(check bool) "checked visible inside a fresh domain" false
    (snd seen)

let test_surface () =
  List.iter
    (fun be ->
      with_backend be (fun () ->
          let name = T.backend_name be in
          (match T.backend_of_string name with
          | Some b when b = be -> ()
          | _ -> Alcotest.failf "backend_of_string (%s) not inverse" name);
          let t = T.create 2 3 [| 1.0; 2.0; 3.0; 4.0; 5.0; 6.0 |] in
          Alcotest.(check (array (float 0.0)))
            (name ^ ": create/to_array round-trip")
            [| 1.0; 2.0; 3.0; 4.0; 5.0; 6.0 |] (T.to_array t);
          (match T.backend_of t with
          | b when b = be -> ()
          | _ -> Alcotest.fail (name ^ ": constructor on wrong backend"));
          let z = T.zeros 2 2 in
          let a = T.to_array z in
          a.(0) <- 99.0;
          Alcotest.(check (float 0.0))
            (name ^ ": to_array is a copy")
            0.0 (T.get z 0 0);
          let c = T.copy t in
          T.set c 0 0 42.0;
          Alcotest.(check (float 0.0))
            (name ^ ": copy is deep")
            1.0 (T.get t 0 0)))
    all_backends;
  Alcotest.(check (list string))
    "backends catalogue matches the live list"
    [ "reference"; "bigarray"; "c" ]
    (List.map T.backend_name T.backends);
  Alcotest.(check string) "reference tag" "ref"
    (with_backend T.Reference T.backend_tag);
  Alcotest.(check string) "bigarray tag" "ba64"
    (with_backend T.Bigarray64 T.backend_tag);
  Alcotest.(check string) "c tag" "c64" (with_backend T.C64 T.backend_tag)

(* {2 Cache isolation — a warm reference cache must not serve bigarray} *)

let test_cache_isolation () =
  Alcotest.(check string) "reference schema" "pnn-save-2+ref"
    (with_backend T.Reference Pnn.Serialize.cache_schema);
  Alcotest.(check string) "bigarray schema" "pnn-save-2+ba64"
    (with_backend T.Bigarray64 Pnn.Serialize.cache_schema);
  Alcotest.(check string) "c schema" "pnn-save-2+c64"
    (with_backend T.C64 Pnn.Serialize.cache_schema);
  let key_of () =
    Cache.key
      ~schema:(Pnn.Serialize.cache_schema ())
      ~kind:"btest" [ "config"; "seed 1" ]
  in
  let kref = with_backend T.Reference key_of in
  let kba = with_backend T.Bigarray64 key_of in
  let kc = with_backend T.C64 key_of in
  if String.equal kref kba || String.equal kref kc || String.equal kba kc then
    Alcotest.fail "cache keys collide across backends";
  let cache = Cache.create ~dir:"_backend_cache_test" in
  Cache.store cache ~kind:"btest" ~key:kref [ "reference result" ];
  Cache.store cache ~kind:"btest" ~key:kba [ "bigarray result" ];
  Alcotest.(check bool) "warm reference entry hits on reference key" true
    (Option.is_some (Cache.find cache ~kind:"btest" ~key:kref));
  Alcotest.(check bool) "bigarray key addresses its own entry" true
    (String.equal
       (List.hd (Option.get (Cache.find cache ~kind:"btest" ~key:kba)))
       "bigarray result");
  Alcotest.(check bool) "a +c64 key never serves +ref or +ba64 entries" true
    (Option.is_none (Cache.find cache ~kind:"btest" ~key:kc))

(* {2 Fused hot-path kernels — fused vs decomposed bit-identity} *)

let fused_ops = [ None; Some T.Tanh; Some T.Relu; Some T.Sigmoid ]

let fused_op_name = function None -> "none" | Some u -> unop_name u

let fused_shapes = [ (1, 1, 1); (5, 7, 4); (3, 5, 9); (8, 8, 16); (0, 3, 4); (6, 2, 17) ]

let run_fused_dense () =
  List.concat_map
    (fun (m, k, n) ->
      List.concat_map
        (fun op ->
          let x = T.scale 0.05 (mk m k 1) in
          let w = T.scale 0.05 (mk k n 2) in
          let b = T.scale 0.05 (mk 1 n 3) in
          let pre = T.zeros m n and out = T.zeros m n in
          T.matmul_bias_unop_into ?op x w b ~pre ~out;
          [ T.to_array pre; T.to_array out ])
        fused_ops)
    fused_shapes
  |> Array.concat

let test_fused_dense () =
  List.iter
    (fun be ->
      with_backend be (fun () ->
          List.iter
            (fun (m, k, n) ->
              List.iter
                (fun op ->
                  let what =
                    Printf.sprintf "fused dense %s %dx%dx%d [%s]"
                      (fused_op_name op) m k n (T.backend_name be)
                  in
                  let x = T.scale 0.05 (mk m k 1) in
                  let w = T.scale 0.05 (mk k n 2) in
                  let b = T.scale 0.05 (mk 1 n 3) in
                  let pre = T.zeros m n and out = T.zeros m n in
                  T.matmul_bias_unop_into ?op x w b ~pre ~out;
                  (* decomposed oracle on the same backend *)
                  let pre2 = T.zeros m n in
                  T.matmul_into x w ~dst:pre2;
                  if m > 0 && n > 0 then T.add_rowvec_into pre2 b ~dst:pre2;
                  let out2 =
                    match op with
                    | None -> pre2
                    | Some u ->
                        let o = T.zeros m n in
                        T.unop_into u pre2 ~dst:o;
                        o
                  in
                  check_bits ~what:(what ^ " (pre)") (T.to_array pre2)
                    (T.to_array pre);
                  check_bits ~what:(what ^ " (out)") (T.to_array out2)
                    (T.to_array out);
                  (* sharing pre as out must work when no unop is applied *)
                  if op = None then begin
                    let shared = T.zeros m n in
                    T.matmul_bias_unop_into x w b ~pre:shared ~out:shared;
                    check_bits ~what:(what ^ " (pre==out)") (T.to_array out2)
                      (T.to_array shared)
                  end)
                fused_ops)
            fused_shapes))
    T.backends;
  (* the fused path must be bit-identical across checked/unchecked modes *)
  List.iter
    (fun be ->
      let plain = with_backend be run_fused_dense in
      let checked =
        with_backend be (fun () ->
            let prev = T.checked () in
            T.set_checked true;
            Fun.protect ~finally:(fun () -> T.set_checked prev) run_fused_dense)
      in
      check_bits
        ~what:(T.backend_name be ^ " fused dense checked vs unchecked")
        plain checked)
    T.backends

let test_fused_adam () =
  List.iter
    (fun be ->
      with_backend be (fun () ->
          let lr = 0.01 and beta1 = 0.9 and beta2 = 0.999 and eps = 1e-8 in
          let bc1 = 0.1 and bc2 = 0.001 in
          let mk_leaf s =
            (mk 3 4 s, mk 3 4 (s + 10), Array.make 12 0.01, Array.make 12 0.02)
          in
          let items = List.map mk_leaf [ 1; 2; 3 ] in
          let twins =
            List.map (fun (v, g, m, s) -> (T.copy v, g, Array.copy m, Array.copy s)) items
          in
          T.adam_step_many ~lr ~beta1 ~beta2 ~eps ~bc1 ~bc2 items;
          List.iter
            (fun (v, g, m, s) ->
              T.adam_step ~lr ~beta1 ~beta2 ~eps ~bc1 ~bc2 ~m ~v:s ~grad:g v)
            twins;
          List.iteri
            (fun i ((v, _, m, s), (v', _, m', s')) ->
              let what =
                Printf.sprintf "fused adam leaf %d [%s]" i (T.backend_name be)
              in
              check_bits ~what:(what ^ " value") (T.to_array v') (T.to_array v);
              check_bits ~what:(what ^ " m") m' m;
              check_bits ~what:(what ^ " v") s' s)
            (List.combine items twins)))
    T.backends

let test_fused_autodiff () =
  (* Autodiff.dense (one node) against the legacy 3-node chain: values and
     every gradient bit-identical, on every backend. *)
  let run be fused op_act =
    with_backend be (fun () ->
        let x = Autodiff.const (T.scale 0.05 (mk 4 6 1)) in
        let w = Autodiff.param (T.scale 0.05 (mk 6 3 2)) in
        let b = Autodiff.param (T.scale 0.05 (mk 1 3 3)) in
        let y =
          if fused then Autodiff.dense ?op:op_act x w b
          else
            let pre = Autodiff.add_rowvec (Autodiff.matmul x w) b in
            match op_act with
            | None -> pre
            | Some T.Tanh -> Autodiff.tanh pre
            | Some T.Sigmoid -> Autodiff.sigmoid pre
            | Some T.Relu -> Autodiff.relu pre
            | Some _ -> Alcotest.fail "unexpected unop"
        in
        let loss = Autodiff.mean (Autodiff.mul y y) in
        Autodiff.backward loss;
        Array.concat
          [
            T.to_array (Autodiff.value y);
            T.to_array (Autodiff.grad w);
            T.to_array (Autodiff.grad b);
          ])
  in
  List.iter
    (fun be ->
      List.iter
        (fun op ->
          check_bits
            ~what:
              (Printf.sprintf "autodiff dense %s [%s]" (fused_op_name op)
                 (T.backend_name be))
            (run be false op) (run be true op))
        fused_ops)
    T.backends

let () =
  Alcotest.run "backend"
    [
      ( "agreement",
        [
          Alcotest.test_case "elementwise" `Quick test_elementwise;
          Alcotest.test_case "reductions" `Quick test_reductions;
          Alcotest.test_case "matmul family" `Quick test_matmul_family;
          Alcotest.test_case "assembly" `Quick test_assembly;
          Alcotest.test_case "training kernels" `Quick test_training_kernels;
          Alcotest.test_case "rng constructors" `Quick test_rng_constructors;
        ] );
      ( "edges",
        [
          Alcotest.test_case "clamp NaN pass-through" `Quick
            test_clamp_nan_passthrough;
          Alcotest.test_case "min/max/argmax NaN and -0.0" `Quick
            test_minmax_argmax_edges;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "bit-identity within backend" `Quick
            test_within_backend_determinism;
          Alcotest.test_case "mixed storage" `Quick test_mixed_storage;
        ] );
      ( "fused",
        [
          Alcotest.test_case "dense fused vs decomposed" `Quick test_fused_dense;
          Alcotest.test_case "adam fused vs per-leaf" `Quick test_fused_adam;
          Alcotest.test_case "autodiff dense node" `Quick test_fused_autodiff;
        ] );
      ( "surface",
        [
          Alcotest.test_case "construction and tags" `Quick test_surface;
          Alcotest.test_case "selection atomic across domains" `Quick
            test_selection_atomic_across_domains;
          Alcotest.test_case "cache isolation" `Quick test_cache_isolation;
        ] );
    ]
