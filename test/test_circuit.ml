(* Tests for the parametric ptanh circuit and netlist utilities. *)

module N = Circuit.Netlist
module P = Circuit.Ptanh_circuit

let mid_omega = [| 255.0; 127.0; 255e3; 127e3; 255e3; 500.0; 40.0 |]

let test_omega_roundtrip () =
  let o = P.omega_of_array mid_omega in
  Alcotest.(check (array (float 0.0))) "roundtrip" mid_omega (P.omega_to_array o)

let test_omega_of_array_invalid () =
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Ptanh_circuit.omega_of_array: need 7 values") (fun () ->
      ignore (P.omega_of_array [| 1.0 |]))

let test_build_validates () =
  let nl, out = P.build (P.omega_of_array mid_omega) in
  (match N.validate nl with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "invalid netlist: %s" msg);
  Alcotest.(check bool) "output node allocated" true (out > 0 && out < N.node_count nl);
  Alcotest.(check int) "two sources" 2 (N.source_count nl)

let test_transfer_rising_tanh_like () =
  let _, vout = P.transfer (P.omega_of_array mid_omega) in
  let n = Array.length vout in
  Alcotest.(check int) "default points" 41 n;
  (* overall rising *)
  Alcotest.(check bool) "rises" true (vout.(n - 1) > vout.(0) +. 0.2);
  (* bounded by the supply *)
  Array.iter
    (fun v ->
      if v < -0.01 || v > P.vdd +. 0.01 then Alcotest.failf "out of rails: %f" v)
    vout;
  (* monotone non-decreasing (within numerical tolerance) *)
  for i = 0 to n - 2 do
    if vout.(i + 1) < vout.(i) -. 1e-6 then Alcotest.failf "not monotone at %d" i
  done

let test_transfer_responds_to_r5 () =
  let weak = Array.copy mid_omega in
  weak.(4) <- 15e3;
  let _, strong_out = P.transfer (P.omega_of_array mid_omega) in
  let _, weak_out = P.transfer (P.omega_of_array weak) in
  let range a = Array.fold_left max a.(0) a -. Array.fold_left min a.(0) a in
  Alcotest.(check bool) "smaller load -> smaller swing" true
    (range weak_out < range strong_out)

let test_transfer_responds_to_divider () =
  (* a smaller k1 (R2 << R1) shifts the transition to larger Vin *)
  let shifted = Array.copy mid_omega in
  shifted.(1) <- 30.0;
  let vin, base_out = P.transfer (P.omega_of_array mid_omega) in
  let _, shifted_out = P.transfer (P.omega_of_array shifted) in
  let mid_crossing vout =
    let lo = Array.fold_left min vout.(0) vout and hi = Array.fold_left max vout.(0) vout in
    let target = (lo +. hi) /. 2.0 in
    let idx = ref 0 in
    (try
       Array.iteri
         (fun i v ->
           if v >= target then begin
             idx := i;
             raise Exit
           end)
         vout
     with Exit -> ());
    vin.(!idx)
  in
  Alcotest.(check bool) "transition shifts right" true
    (mid_crossing shifted_out > mid_crossing base_out)

let test_netlist_set_source () =
  let nl = N.create () in
  let a = N.fresh_node nl in
  N.add nl (N.Vsource { name = "x"; plus = a; minus = N.ground; volts = 1.0 });
  N.set_source nl "x" 2.5;
  (match N.elements nl with
  | [ N.Vsource { volts; _ } ] -> Alcotest.(check (float 0.0)) "updated" 2.5 volts
  | _ -> Alcotest.fail "unexpected netlist");
  Alcotest.check_raises "unknown source" Not_found (fun () -> N.set_source nl "y" 0.0)

let test_netlist_validate_errors () =
  let cases =
    [
      ( "bad resistance",
        fun nl ->
          let a = N.fresh_node nl in
          N.add nl (N.Resistor { a; b = N.ground; ohms = -5.0 }) );
      ( "duplicate source",
        fun nl ->
          let a = N.fresh_node nl in
          N.add nl (N.Vsource { name = "v"; plus = a; minus = N.ground; volts = 1.0 });
          N.add nl (N.Vsource { name = "v"; plus = a; minus = N.ground; volts = 2.0 }) );
      ( "bad geometry",
        fun nl ->
          let a = N.fresh_node nl in
          N.add nl
            (N.Transistor { gate = a; drain = a; source = N.ground; w_um = -1.0; l_um = 1.0 })
      );
    ]
  in
  List.iter
    (fun (name, build) ->
      let nl = N.create () in
      build nl;
      match N.validate nl with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "%s: expected validation error" name)
    cases

let test_netlist_duplicate_error_deterministic () =
  (* regression: validate's duplicate-name check keeps its seen-table
     membership-only and walks elements in insertion order, so the reported
     duplicate is the first one in element order, stably across calls *)
  let nl = N.create () in
  let a = N.fresh_node nl in
  N.add nl (N.Vsource { name = "vb"; plus = a; minus = N.ground; volts = 1.0 });
  N.add nl (N.Vsource { name = "va"; plus = a; minus = N.ground; volts = 1.0 });
  N.add nl (N.Vsource { name = "vb"; plus = a; minus = N.ground; volts = 2.0 });
  N.add nl (N.Vsource { name = "va"; plus = a; minus = N.ground; volts = 2.0 });
  let run () =
    match N.validate nl with
    | Error msg -> msg
    | Ok () -> Alcotest.fail "expected a duplicate-source error"
  in
  let first = run () in
  Alcotest.(check string)
    "first duplicate in element order wins" "duplicate source name vb" first;
  for _ = 1 to 5 do
    Alcotest.(check string) "stable across repeated validation" first (run ())
  done

let test_linspace () =
  let a = Circuit.Dc_sweep.linspace 0.0 1.0 5 in
  Alcotest.(check (array (float 1e-12))) "linspace" [| 0.0; 0.25; 0.5; 0.75; 1.0 |] a;
  Alcotest.check_raises "n < 2" (Invalid_argument "Dc_sweep.linspace: need n >= 2")
    (fun () -> ignore (Circuit.Dc_sweep.linspace 0.0 1.0 1))

let qcheck_transfer_bounded =
  (* any feasible design point produces a bounded transfer curve *)
  QCheck.Test.make ~name:"transfer curves stay within rails" ~count:25
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let raw =
        Array.mapi
          (fun i lo ->
            Rng.uniform rng ~lo ~hi:Surrogate.Design_space.learnable_hi.(i))
          Surrogate.Design_space.learnable_lo
      in
      let omega = Surrogate.Design_space.assemble raw in
      match P.transfer ~points:11 (P.omega_of_array omega) with
      | exception Circuit.Mna.No_convergence _ -> true (* acceptable, filtered upstream *)
      | _, vout -> Array.for_all (fun v -> v >= -0.05 && v <= P.vdd +. 0.05) vout)

(* {1 Transient analysis} *)

let test_rc_step_response () =
  (* RC low-pass: V(t) = 1 - exp(-t/RC); compare against the analytic law *)
  let nl = N.create () in
  let top = N.fresh_node nl in
  let out = N.fresh_node nl in
  let r = 10_000.0 and c = 1e-6 in
  N.add nl (N.Vsource { name = "vin"; plus = top; minus = N.ground; volts = 0.0 });
  N.add nl (N.Resistor { a = top; b = out; ohms = r });
  N.add nl (N.Capacitor { a = out; b = N.ground; farads = c });
  let tau = r *. c in
  let result =
    Circuit.Transient.run ~model:Circuit.Egt.default ~netlist:nl ~source:"vin"
      ~waveform:(Circuit.Transient.step ()) ~duration:(5.0 *. tau) ~dt:(tau /. 100.0) ()
  in
  Array.iteri
    (fun k t ->
      let expected = 1.0 -. exp (-.t /. tau) in
      let got = result.Circuit.Transient.voltages.(k).(out) in
      if Float.abs (got -. expected) > 0.01 then
        Alcotest.failf "RC response at t=%.4f: %.4f vs %.4f" t got expected)
    result.Circuit.Transient.times

let test_rc_settle_time () =
  let nl = N.create () in
  let top = N.fresh_node nl in
  let out = N.fresh_node nl in
  let r = 10_000.0 and c = 1e-6 in
  N.add nl (N.Vsource { name = "vin"; plus = top; minus = N.ground; volts = 0.0 });
  N.add nl (N.Resistor { a = top; b = out; ohms = r });
  N.add nl (N.Capacitor { a = out; b = N.ground; farads = c });
  let tau = r *. c in
  let result =
    Circuit.Transient.run ~model:Circuit.Egt.default ~netlist:nl ~source:"vin"
      ~waveform:(Circuit.Transient.step ()) ~duration:(8.0 *. tau) ~dt:(tau /. 50.0) ()
  in
  match Circuit.Transient.settle_time result ~node:out () with
  | None -> Alcotest.fail "RC did not settle"
  | Some t ->
      (* 2% band -> ln(50) tau ~ 3.9 tau *)
      Alcotest.(check bool)
        (Printf.sprintf "settle %.4f ~ 3.9 tau" t)
        true
        (t > 3.0 *. tau && t < 5.0 *. tau)

let test_capacitor_open_in_dc () =
  (* DC solve: capacitor has no effect on the divider *)
  let nl = N.create () in
  let top = N.fresh_node nl in
  let mid = N.fresh_node nl in
  N.add nl (N.Vsource { name = "v"; plus = top; minus = N.ground; volts = 2.0 });
  N.add nl (N.Resistor { a = top; b = mid; ohms = 1000.0 });
  N.add nl (N.Resistor { a = mid; b = N.ground; ohms = 1000.0 });
  N.add nl (N.Capacitor { a = mid; b = N.ground; farads = 1e-6 });
  let sol = Circuit.Mna.solve Circuit.Egt.default nl in
  Alcotest.(check (float 1e-6)) "divider unchanged" 1.0 sol.Circuit.Mna.voltages.(mid)

let test_transient_validations () =
  let nl = N.create () in
  let top = N.fresh_node nl in
  N.add nl (N.Vsource { name = "vin"; plus = top; minus = N.ground; volts = 0.0 });
  N.add nl (N.Resistor { a = top; b = N.ground; ohms = 100.0 });
  match
    Circuit.Transient.run ~model:Circuit.Egt.default ~netlist:nl ~source:"vin"
      ~waveform:(Circuit.Transient.step ()) ~duration:0.0 ~dt:1e-3 ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected invalid duration error"

let test_ptanh_latency_millisecond_scale () =
  (* printed neuron nonlinear stage with nF parasitics settles in ~ms *)
  let o = P.omega_of_array mid_omega in
  match P.latency ~dt:5e-5 ~duration:4e-2 o with
  | None -> Alcotest.fail "ptanh stage did not settle"
  | Some t ->
      Alcotest.(check bool)
        (Printf.sprintf "latency %.2f ms in [0.01, 40] ms" (t *. 1e3))
        true
        (t > 1e-5 && t < 4e-2)

let () =
  Alcotest.run "circuit"
    [
      ( "ptanh circuit",
        [
          Alcotest.test_case "omega roundtrip" `Quick test_omega_roundtrip;
          Alcotest.test_case "omega invalid" `Quick test_omega_of_array_invalid;
          Alcotest.test_case "build validates" `Quick test_build_validates;
          Alcotest.test_case "rising tanh-like" `Quick test_transfer_rising_tanh_like;
          Alcotest.test_case "responds to R5" `Quick test_transfer_responds_to_r5;
          Alcotest.test_case "responds to divider" `Quick test_transfer_responds_to_divider;
          QCheck_alcotest.to_alcotest qcheck_transfer_bounded;
        ] );
      ( "netlist",
        [
          Alcotest.test_case "set_source" `Quick test_netlist_set_source;
          Alcotest.test_case "validate errors" `Quick test_netlist_validate_errors;
          Alcotest.test_case "duplicate error deterministic" `Quick
            test_netlist_duplicate_error_deterministic;
          Alcotest.test_case "linspace" `Quick test_linspace;
        ] );
      ( "spice export",
        [
          Alcotest.test_case "cards present" `Quick (fun () ->
              let nl, _ = P.build (P.omega_of_array mid_omega) in
              let text = Circuit.Spice_export.to_spice nl in
              let contains needle =
                let n = String.length needle and h = String.length text in
                let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
                go 0
              in
              List.iter
                (fun card ->
                  if not (contains card) then Alcotest.failf "missing card %S" card)
                [ "Vvin"; "Vvdd"; "R1 "; "B1 "; "B2 "; ".end" ]);
          Alcotest.test_case "dc sweep card" `Quick (fun () ->
              let text = Circuit.Spice_export.ptanh_circuit (P.omega_of_array mid_omega) in
              let contains needle =
                let n = String.length needle and h = String.length text in
                let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
                go 0
              in
              Alcotest.(check bool) "has .dc" true (contains ".dc Vvin");
              Alcotest.(check bool) "ends with .end" true
                (String.length text > 5
                && String.sub text (String.length text - 5) 5 = ".end\n"));
          Alcotest.test_case "resistor count" `Quick (fun () ->
              let nl, _ = P.build (P.omega_of_array mid_omega) in
              let text = Circuit.Spice_export.to_spice nl in
              let lines = String.split_on_char '\n' text in
              let resistors =
                List.length
                  (List.filter (fun l -> String.length l > 0 && l.[0] = 'R') lines)
              in
              Alcotest.(check int) "6 resistors in the 2-stage circuit" 6 resistors);
        ] );
      ( "transient",
        [
          Alcotest.test_case "RC step response" `Quick test_rc_step_response;
          Alcotest.test_case "RC settle time" `Quick test_rc_settle_time;
          Alcotest.test_case "capacitor open in DC" `Quick test_capacitor_open_in_dc;
          Alcotest.test_case "validations" `Quick test_transient_validations;
          Alcotest.test_case "ptanh latency" `Quick test_ptanh_latency_millisecond_scale;
        ] );
    ]
