(* Round-trip tests for the pNN persistence format: bit-exact tensor codec
   (including non-finite %h entries and degenerate shapes), the versioned
   config line, and malformed-input rejection. *)

module A = Autodiff
module T = Tensor
module C = Pnn.Config
module S = Pnn.Serialize

let surrogate =
  lazy
    (let dataset = Surrogate.Pipeline.generate_dataset ~n:250 () in
     let model, _ =
       Surrogate.Pipeline.train_surrogate ~arch:[ 10; 8; 6; 4 ] ~max_epochs:300
         (Rng.create 42) dataset
     in
     model)

let make_net ?(seed = 1) ?(config = C.default) ~inputs ~outputs () =
  Pnn.Network.create (Rng.create seed) config (Lazy.force surrogate) ~inputs ~outputs

let tensor_bits t = Array.map Int64.bits_of_float (T.to_array t)

let check_tensor_bits msg a b =
  Alcotest.(check (array int64)) msg (tensor_bits a) (tensor_bits b);
  Alcotest.(check (pair int int)) (msg ^ " shape") (T.shape a) (T.shape b)

(* {1 Tensor line codec} *)

let test_tensor_line_special_values () =
  (* canonical NaNs only: %h carries the sign but canonicalizes the payload *)
  let nan = float_of_string "nan" and neg_nan = 0.0 /. 0.0 in
  let t =
    T.of_array [| nan; neg_nan; Float.infinity; Float.neg_infinity; -0.0; 1.5e-300 |]
  in
  let t' = S.tensor_of_line (S.tensor_line t) in
  check_tensor_bits "non-finite entries round-trip bit-exact" t t'

let test_tensor_line_degenerate_shapes () =
  List.iter
    (fun (r, c) ->
      let t = T.zeros r c in
      let t' = S.tensor_of_line (S.tensor_line t) in
      Alcotest.(check (pair int int))
        (Printf.sprintf "%dx%d round-trips" r c)
        (r, c) (T.shape t'))
    [ (0, 2); (0, 0); (1, 0) ]

let test_tensor_line_malformed () =
  List.iter
    (fun line ->
      match S.tensor_of_line line with
      | exception Failure _ -> ()
      | _ -> Alcotest.failf "expected Failure for %S" line)
    [ ""; "3" ]

(* {1 Rng stream-position codec} *)

let test_rng_line_roundtrip () =
  let rng = Rng.create 1234 in
  (* advance off the seed so the state words are arbitrary *)
  for _ = 1 to 57 do
    ignore (Rng.float rng)
  done;
  let line = S.rng_line rng in
  let rng' = S.rng_of_line line in
  Alcotest.(check (array int64))
    "restored state words bit-equal" (Rng.state rng) (Rng.state rng');
  let next r = Array.init 64 (fun _ -> Int64.bits_of_float (Rng.float r)) in
  Alcotest.(check (array int64))
    "restored stream continues bit-exactly" (next rng) (next rng')

let test_rng_line_restores_midstream () =
  (* the practical checkpoint use: record, keep drawing, rewind, re-draw *)
  let rng = Rng.create 9 in
  ignore (Rng.normal rng);
  let line = S.rng_line rng in
  let tail = Array.init 32 (fun _ -> Int64.bits_of_float (Rng.normal rng)) in
  Rng.set_state rng (Rng.state (S.rng_of_line line));
  let replay = Array.init 32 (fun _ -> Int64.bits_of_float (Rng.normal rng)) in
  Alcotest.(check (array int64)) "replay after set_state bit-equal" tail replay

let test_rng_line_malformed () =
  List.iter
    (fun line ->
      match S.rng_of_line line with
      | exception Failure _ -> ()
      | _ -> Alcotest.failf "expected Failure for %S" line)
    [ ""; "rng"; "rng 1 2 3"; "notrng 1 2 3 4"; "rng 1 2 3 zz" ]

(* {1 Format-version header} *)

let test_header_present_and_versioned () =
  let net = make_net ~inputs:3 ~outputs:2 () in
  match S.to_lines net with
  | header :: _ ->
      Alcotest.(check string) "header line" "pnn-save 2" header;
      Alcotest.(check string) "schema tag matches" "pnn-save-2" S.schema_tag
  | [] -> Alcotest.fail "to_lines returned nothing"

let test_headerless_v1_accepted () =
  let net = make_net ~inputs:3 ~outputs:2 () in
  let headerless = List.tl (S.to_lines net) in
  let net', rest = S.of_lines (Lazy.force surrogate) headerless in
  Alcotest.(check int) "all lines consumed" 0 (List.length rest);
  List.iter2
    (fun l l' ->
      check_tensor_bits "theta bit-exact"
        (A.value l.Pnn.Layer.theta)
        (A.value l'.Pnn.Layer.theta))
    (Pnn.Network.layers net) (Pnn.Network.layers net')

let test_unknown_version_rejected () =
  let net = make_net ~inputs:3 ~outputs:2 () in
  let future = "pnn-save 99" :: List.tl (S.to_lines net) in
  match S.of_lines (Lazy.force surrogate) future with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure on future format version"

(* {1 Config line codec} *)

let test_config_line_roundtrip () =
  let config = { C.default with C.epsilon = 0.1; val_every = 7; patience = 33 } in
  Alcotest.(check bool) "12-field round-trip" true
    (S.config_of_line (S.config_line config) = config)

let test_config_line_back_compat () =
  (* a pre-val_every save: 11 fields, no version tag *)
  let c = C.default in
  let legacy =
    Printf.sprintf "config %d %h %h %h %d %d %d %d %h %h %h" c.C.hidden c.C.lr_theta
      c.C.lr_omega c.C.epsilon c.C.n_mc_train c.C.n_mc_val c.C.max_epochs c.C.patience
      c.C.g_min c.C.g_max c.C.logit_scale
  in
  let parsed = S.config_of_line legacy in
  Alcotest.(check int) "val_every defaults to the historical 5" 5 parsed.C.val_every;
  Alcotest.(check bool) "other fields preserved" true (parsed = { c with C.val_every = 5 })

let test_config_line_malformed () =
  List.iter
    (fun line ->
      match S.config_of_line line with
      | exception Failure _ -> ()
      | _ -> Alcotest.failf "expected Failure for %S" line)
    [ "config 3"; "notconfig 1 2 3"; "" ]

(* {1 Network round-trip: bit-exact} *)

let check_network_roundtrip net =
  let lines = S.to_lines net in
  let net', rest = S.of_lines (Lazy.force surrogate) lines in
  Alcotest.(check int) "all lines consumed" 0 (List.length rest);
  Alcotest.(check bool) "config equal" true
    (Pnn.Network.config net' = Pnn.Network.config net);
  List.iter2
    (fun l l' ->
      check_tensor_bits "theta bit-exact"
        (A.value l.Pnn.Layer.theta)
        (A.value l'.Pnn.Layer.theta);
      check_tensor_bits "act omega bit-exact"
        (Pnn.Nonlinear.snapshot l.Pnn.Layer.act)
        (Pnn.Nonlinear.snapshot l'.Pnn.Layer.act);
      check_tensor_bits "neg omega bit-exact"
        (Pnn.Nonlinear.snapshot l.Pnn.Layer.neg)
        (Pnn.Nonlinear.snapshot l'.Pnn.Layer.neg))
    (Pnn.Network.layers net) (Pnn.Network.layers net')

let test_roundtrip_with_nonfinite_theta () =
  let net = make_net ~inputs:3 ~outputs:2 () in
  (* corrupt a θ with the values %h must still carry faithfully *)
  let v = A.value (List.hd (Pnn.Network.params_theta net)) in
  T.set v 0 0 (float_of_string "nan");
  T.set v 0 1 Float.infinity;
  T.set v 1 0 Float.neg_infinity;
  T.set v 1 1 (-0.0);
  check_network_roundtrip net

let qcheck_roundtrip_bit_exact =
  QCheck.Test.make ~name:"network save/load is bit-exact for any seed" ~count:15
    QCheck.(pair (int_range 0 1000) (int_range 1 4))
    (fun (seed, outputs) ->
      let config = { C.default with C.val_every = 1 + (seed mod 9) } in
      let net = make_net ~seed ~config ~inputs:3 ~outputs () in
      check_network_roundtrip net;
      true)

(* {1 Malformed network input} *)

let test_of_lines_truncated () =
  let net = make_net ~inputs:3 ~outputs:2 () in
  let lines = S.to_lines net in
  let truncated = List.filteri (fun i _ -> i < List.length lines - 1) lines in
  (match S.of_lines (Lazy.force surrogate) truncated with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure on truncated input");
  match S.of_lines (Lazy.force surrogate) [ "pnn 1"; S.config_line C.default ] with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure on missing layer section"

(* Truncated/corrupt model files must surface as a clear [Failure
   "Serialize: ..."] — never [Invalid_argument] from [Tensor.create] or a
   bare [Failure "int_of_string"] — so a server can refuse to start with a
   readable reason instead of crashing mid-load. *)
let expect_serialize_failure what f =
  match f () with
  | exception Failure msg ->
      if not (String.length msg >= 10 && String.sub msg 0 10 = "Serialize:") then
        Alcotest.failf "%s: Failure lacks Serialize: prefix: %s" what msg
  | exception e ->
      Alcotest.failf "%s: escaped non-Failure exception %s" what
        (Printexc.to_string e)
  | _ -> Alcotest.failf "%s: expected Failure" what

let test_tensor_line_truncated_values () =
  (* shape says 2x3 = 6 values but only 4 survive: the length check must
     fire before any [Tensor.create] *)
  expect_serialize_failure "short value list" (fun () ->
      S.tensor_of_line "2 3 0x1p0 0x1p1 0x1p2 0x1p3");
  expect_serialize_failure "excess values" (fun () ->
      S.tensor_of_line "1 1 0x1p0 0x1p1");
  expect_serialize_failure "garbage dimension" (fun () ->
      S.tensor_of_line "2 banana 0x1p0 0x1p1");
  expect_serialize_failure "garbage value" (fun () ->
      S.tensor_of_line "1 2 0x1p0 spam");
  expect_serialize_failure "negative dimension" (fun () ->
      S.tensor_of_line "-1 2 0x1p0 0x1p1")

let test_load_file_truncated_rejected () =
  let net = make_net ~inputs:3 ~outputs:2 () in
  let path = Filename.temp_file "pnn_trunc" ".pnn" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      S.save_file net path;
      (* chop the file mid-way through the last tensor line *)
      let full = In_channel.with_open_text path In_channel.input_all in
      let cut = String.length full - String.length full / 4 in
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc (String.sub full 0 cut));
      expect_serialize_failure "truncated save file" (fun () ->
          S.load_file (Lazy.force surrogate) path);
      (* the error must name the offending path *)
      (match S.load_file (Lazy.force surrogate) path with
      | exception Failure msg ->
          let has_sub hay needle =
            let nh = String.length hay and nn = String.length needle in
            let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
            go 0
          in
          Alcotest.(check bool) "message names the file" true (has_sub msg path)
      | _ -> Alcotest.fail "expected Failure"))

let test_of_lines_malformed_header_or_config () =
  List.iter
    (fun lines ->
      match S.of_lines (Lazy.force surrogate) lines with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "expected Failure")
    [
      [];
      [ "pnn" ];
      [ "bad 2"; S.config_line C.default ];
      [ "pnn 1"; "config 3" ];
    ]

let () =
  Alcotest.run "serialize"
    [
      ( "tensor-line",
        [
          Alcotest.test_case "nan/inf/-0.0 bit-exact" `Quick test_tensor_line_special_values;
          Alcotest.test_case "degenerate shapes" `Quick test_tensor_line_degenerate_shapes;
          Alcotest.test_case "malformed" `Quick test_tensor_line_malformed;
        ] );
      ( "rng-line",
        [
          Alcotest.test_case "state+stream roundtrip" `Quick test_rng_line_roundtrip;
          Alcotest.test_case "midstream rewind/replay" `Quick
            test_rng_line_restores_midstream;
          Alcotest.test_case "malformed" `Quick test_rng_line_malformed;
        ] );
      ( "header",
        [
          Alcotest.test_case "versioned header present" `Quick
            test_header_present_and_versioned;
          Alcotest.test_case "headerless v1 accepted" `Quick test_headerless_v1_accepted;
          Alcotest.test_case "future version rejected" `Quick
            test_unknown_version_rejected;
        ] );
      ( "config-line",
        [
          Alcotest.test_case "12-field roundtrip" `Quick test_config_line_roundtrip;
          Alcotest.test_case "11-field back-compat" `Quick test_config_line_back_compat;
          Alcotest.test_case "malformed" `Quick test_config_line_malformed;
        ] );
      ( "network",
        [
          Alcotest.test_case "non-finite theta roundtrip" `Quick
            test_roundtrip_with_nonfinite_theta;
          QCheck_alcotest.to_alcotest qcheck_roundtrip_bit_exact;
        ] );
      ( "malformed",
        [
          Alcotest.test_case "truncated" `Quick test_of_lines_truncated;
          Alcotest.test_case "bad header/config" `Quick test_of_lines_malformed_header_or_config;
          Alcotest.test_case "truncated tensor line" `Quick
            test_tensor_line_truncated_values;
          Alcotest.test_case "truncated file rejected with path" `Quick
            test_load_file_truncated_rejected;
        ] );
    ]
