(* Tests for the content-addressed experiment cache: hits are bit-identical,
   damage of any kind degrades to a miss (and is healed by the rewrite), keys
   move whenever an input moves, and concurrent same-key writers under a
   multi-worker pool leave exactly one valid entry and no temp litter. *)

module Ca = Cache
module P = Parallel.Pool

(* A fresh cache root per test; [Cache.create] makes directories lazily. *)
let fresh_dir () =
  let stamp = Filename.temp_file "pnncache" ".d" in
  Sys.remove stamp;
  stamp

let rec tree_files dir =
  if not (Sys.file_exists dir) then []
  else
    Array.to_list (Sys.readdir dir)
    |> List.concat_map (fun name ->
           let p = Filename.concat dir name in
           if Sys.is_directory p then tree_files p else [ p ])

let contains_sub s sub =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

let tmp_litter dir =
  List.filter (fun p -> contains_sub p ".tmp") (tree_files dir)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* lines whose bit-exactness %h is there to protect *)
let special_lines =
  [
    Printf.sprintf "floats %h %h %h %h %h" (0.0 /. 0.0) (-0.0) Float.infinity
      Float.neg_infinity 1.5e-300;
    "plain second line";
  ]

let the_key = Ca.key ~schema:"test-1" ~kind:"unit" [ "a"; "b" ]

let entry_path c =
  match Ca.member_path c ~kind:"unit" ~key:the_key with
  | Some p -> p
  | None -> Alcotest.fail "member_path on an enabled cache"

(* {1 Hit semantics} *)

let test_store_find_bit_identical () =
  let c = Ca.create ~dir:(fresh_dir ()) in
  Alcotest.(check bool) "cold find misses" true
    (Ca.find c ~kind:"unit" ~key:the_key = None);
  Ca.store c ~kind:"unit" ~key:the_key special_lines;
  (match Ca.find c ~kind:"unit" ~key:the_key with
  | Some lines ->
      Alcotest.(check (list string)) "lines verbatim" special_lines lines
  | None -> Alcotest.fail "stored entry must hit");
  let st = Ca.stats c in
  Alcotest.(check int) "1 miss" 1 (Atomic.get st.Ca.misses);
  Alcotest.(check int) "1 hit" 1 (Atomic.get st.Ca.hits);
  Alcotest.(check int) "0 corrupt" 0 (Atomic.get st.Ca.corrupt)

let test_memoize_hit_skips_compute () =
  let c = Ca.create ~dir:(fresh_dir ()) in
  let calls = ref 0 in
  let values = [| 0.0 /. 0.0; -0.0; Float.neg_infinity; 0.1 +. 0.2 |] in
  let encode a =
    [ String.concat " " (Array.to_list (Array.map (Printf.sprintf "%h") a)) ]
  in
  let decode = function
    | [ line ] ->
        Array.of_list
          (List.map float_of_string (String.split_on_char ' ' line))
    | _ -> failwith "bad payload"
  in
  let compute () = incr calls; values in
  let go () = Ca.memoize c ~kind:"unit" ~key:the_key ~encode ~decode compute in
  let first = go () in
  let second = go () in
  Alcotest.(check int) "computed exactly once" 1 !calls;
  Alcotest.(check (array int64))
    "hit bit-identical (nan, -0.0 included)"
    (Array.map Int64.bits_of_float first)
    (Array.map Int64.bits_of_float second)

(* {1 Damage degrades to a miss and is healed} *)

let test_truncated_entry_is_miss_then_rewritten () =
  let c = Ca.create ~dir:(fresh_dir ()) in
  Ca.store c ~kind:"unit" ~key:the_key special_lines;
  let path = entry_path c in
  let blob = read_file path in
  write_file path (String.sub blob 0 (String.length blob / 2));
  Alcotest.(check bool) "truncated -> miss" true
    (Ca.find c ~kind:"unit" ~key:the_key = None);
  Alcotest.(check bool) "corrupt counted" true
    (Atomic.get (Ca.stats c).Ca.corrupt >= 1);
  let v =
    Ca.memoize c ~kind:"unit" ~key:the_key ~encode:Fun.id ~decode:Fun.id
      (fun () -> special_lines)
  in
  Alcotest.(check (list string)) "recompute returns payload" special_lines v;
  Alcotest.(check bool) "entry healed" true
    (Ca.find c ~kind:"unit" ~key:the_key = Some special_lines)

let test_bit_flip_is_miss () =
  let c = Ca.create ~dir:(fresh_dir ()) in
  Ca.store c ~kind:"unit" ~key:the_key special_lines;
  let path = entry_path c in
  let blob = Bytes.of_string (read_file path) in
  (* flip one payload byte (the last char of the body) *)
  let i = Bytes.length blob - 1 in
  Bytes.set blob i (if Bytes.get blob i = 'x' then 'y' else 'x');
  write_file path (Bytes.to_string blob);
  Alcotest.(check bool) "bit-flipped -> miss" true
    (Ca.find c ~kind:"unit" ~key:the_key = None)

let test_decode_failure_recomputes () =
  let c = Ca.create ~dir:(fresh_dir ()) in
  (* a verified blob whose payload the decoder rejects (schema drift) *)
  Ca.store c ~kind:"unit" ~key:the_key [ "old-format" ];
  let calls = ref 0 in
  let v =
    Ca.memoize c ~kind:"unit" ~key:the_key
      ~encode:(fun s -> [ "new " ^ s ])
      ~decode:(function
        | [ line ] when String.length line > 4 && String.sub line 0 4 = "new " ->
            String.sub line 4 (String.length line - 4)
        | _ -> failwith "unknown payload")
      (fun () -> incr calls; "value")
  in
  Alcotest.(check string) "recomputed" "value" v;
  Alcotest.(check int) "compute ran" 1 !calls;
  Alcotest.(check bool) "rewritten in new format" true
    (Ca.find c ~kind:"unit" ~key:the_key = Some [ "new value" ])

(* {1 Key derivation} *)

let test_key_sensitivity () =
  let base = Ca.key ~schema:"s1" ~kind:"k" [ "config"; "seed=3"; "arm=aware" ] in
  let variants =
    [
      Ca.key ~schema:"s1" ~kind:"k" [ "config'"; "seed=3"; "arm=aware" ];
      Ca.key ~schema:"s1" ~kind:"k" [ "config"; "seed=4"; "arm=aware" ];
      Ca.key ~schema:"s1" ~kind:"k" [ "config"; "seed=3"; "arm=nominal" ];
      Ca.key ~schema:"s2" ~kind:"k" [ "config"; "seed=3"; "arm=aware" ];
      Ca.key ~schema:"s1" ~kind:"k2" [ "config"; "seed=3"; "arm=aware" ];
    ]
  in
  List.iteri
    (fun i k ->
      Alcotest.(check bool) (Printf.sprintf "variant %d re-keys" i) true
        (k <> base))
    variants;
  Alcotest.(check string) "key is deterministic" base
    (Ca.key ~schema:"s1" ~kind:"k" [ "config"; "seed=3"; "arm=aware" ]);
  (* part boundaries matter: ["ab";"c"] and ["a";"bc"] are different keys *)
  Alcotest.(check bool) "no concatenation aliasing" true
    (Ca.key ~schema:"s" ~kind:"k" [ "ab"; "c" ]
    <> Ca.key ~schema:"s" ~kind:"k" [ "a"; "bc" ])

(* {1 Concurrency} *)

let test_concurrent_same_key_writers () =
  let dir = fresh_dir () in
  let c = Ca.create ~dir in
  let pool = P.create ~jobs:4 () in
  Fun.protect
    ~finally:(fun () -> P.shutdown pool)
    (fun () ->
      P.parallel_for pool ~n:16 (fun i ->
          let v =
            Ca.memoize c ~kind:"unit" ~key:the_key ~encode:Fun.id
              ~decode:Fun.id
              (fun () -> ignore i; special_lines)
          in
          if v <> special_lines then failwith "racy payload"));
  Alcotest.(check bool) "entry valid after the race" true
    (Ca.find c ~kind:"unit" ~key:the_key = Some special_lines);
  let entries = Ca.entries ~check:true ~dir () in
  Alcotest.(check int) "exactly one entry" 1 (List.length entries);
  Alcotest.(check bool) "entry checksums clean" true
    (List.for_all (fun e -> e.Ca.valid) entries);
  Alcotest.(check (list string)) "no temp litter" [] (tmp_litter dir)

(* {1 Disabled cache} *)

let test_disabled_is_transparent () =
  let c = Ca.disabled () in
  Alcotest.(check bool) "not enabled" false (Ca.enabled c);
  Alcotest.(check bool) "find misses" true
    (Ca.find c ~kind:"unit" ~key:the_key = None);
  Ca.store c ~kind:"unit" ~key:the_key special_lines;
  Alcotest.(check bool) "store is a no-op" true
    (Ca.find c ~kind:"unit" ~key:the_key = None);
  Alcotest.(check bool) "no member path" true
    (Ca.member_path c ~kind:"unit" ~key:the_key = None);
  let calls = ref 0 in
  for _ = 1 to 3 do
    ignore
      (Ca.memoize c ~kind:"unit" ~key:the_key ~encode:Fun.id ~decode:Fun.id
         (fun () -> incr calls; special_lines))
  done;
  Alcotest.(check int) "memoize always computes" 3 !calls

(* {1 Maintenance} *)

(* Backdate a file so gc's stale-age policy sees it as ancient. *)
let age_file path = Unix.utimes path 1.0 1.0

let test_gc_removes_damage_and_all () =
  let dir = fresh_dir () in
  let c = Ca.create ~dir in
  let key2 = Ca.key ~schema:"test-1" ~kind:"unit" [ "other" ] in
  Ca.store c ~kind:"unit" ~key:the_key special_lines;
  Ca.store c ~kind:"unit" ~key:key2 [ "fine" ];
  write_file (entry_path c) "garbage";
  (* a long-abandoned temp from a crashed writer: exact tmp shape, old mtime *)
  let stale_tmp = Filename.concat dir "unit/leftover.pce.tmp.999.0.1" in
  write_file stale_tmp "partial";
  age_file stale_tmp;
  (* a *young* temp is a potentially live writer's in-flight publish *)
  let live_tmp = Filename.concat dir "unit/inflight.pce.tmp.999.0.2" in
  write_file live_tmp "partial";
  let removed, kept = Ca.gc ~dir () in
  Alcotest.(check (pair int int)) "corrupt + stale temp removed, good kept"
    (2, 1) (removed, kept);
  Alcotest.(check bool) "live writer's temp survives" true
    (Sys.file_exists live_tmp);
  Alcotest.(check bool) "stale temp gone" false (Sys.file_exists stale_tmp);
  Alcotest.(check bool) "survivor still hits" true
    (Ca.find c ~kind:"unit" ~key:key2 = Some [ "fine" ]);
  let removed, kept = Ca.gc ~all:true ~dir () in
  Alcotest.(check (pair int int)) "gc --all clears entries and every temp"
    (2, 0) (removed, kept);
  Alcotest.(check (list string)) "store empty" []
    (List.map (fun e -> e.Ca.path) (Ca.entries ~dir ()));
  Alcotest.(check (list string)) "no temp litter" [] (tmp_litter dir)

let test_gc_never_misreads_entries_as_temps () =
  let dir = fresh_dir () in
  let c = Ca.create ~dir in
  (* Keys are arbitrary strings at this layer; an entry whose key contains
     the temp marker must never be reclaimed as a "temp file".  The old
     substring scan for ".pce.tmp." would have deleted both of these. *)
  let tricky = [ "x.pce.tmp.7"; "y.pce.tmp.1.2" ] in
  List.iter (fun k -> Ca.store c ~kind:"unit" ~key:k [ "keep:" ^ k ]) tricky;
  List.iter (fun k ->
      match Ca.member_path c ~kind:"unit" ~key:k with
      | Some p -> age_file p
      | None -> Alcotest.fail "member_path on an enabled cache")
    tricky;
  let real_tmp = Filename.concat dir "unit/abc.pce.tmp.42.0.0" in
  write_file real_tmp "partial";
  age_file real_tmp;
  Alcotest.(check (list string)) "stale scan sees exactly the real temp"
    [ real_tmp ]
    (Ca.stale_tmp_files ~now:(Unix.time ()) ~dir ());
  let removed, kept = Ca.gc ~dir () in
  Alcotest.(check (pair int int)) "only the real temp reclaimed" (1, 2)
    (removed, kept);
  List.iter (fun k ->
      Alcotest.(check bool) ("entry " ^ k ^ " still hits") true
        (Ca.find c ~kind:"unit" ~key:k = Some [ "keep:" ^ k ]))
    tricky

let test_gc_racing_live_writers () =
  (* Satellite regression: gc sweeping while writers publish must never
     break a publish (it used to delete *any* temp file, including a live
     writer's in-flight one, making the final rename fail). *)
  let dir = fresh_dir () in
  let c = Ca.create ~dir in
  let pool = P.create ~jobs:4 () in
  Fun.protect
    ~finally:(fun () -> P.shutdown pool)
    (fun () ->
      P.parallel_for pool ~n:64 (fun i ->
          if i mod 8 = 0 then ignore (Ca.gc ~dir ())
          else
            let key =
              Ca.key ~schema:"test-1" ~kind:"unit" [ "race"; string_of_int i ]
            in
            Ca.store c ~kind:"unit" ~key [ "payload"; string_of_int i ]));
  for i = 0 to 63 do
    if i mod 8 <> 0 then
      let key =
        Ca.key ~schema:"test-1" ~kind:"unit" [ "race"; string_of_int i ]
      in
      Alcotest.(check bool)
        (Printf.sprintf "entry %d published despite gc" i)
        true
        (Ca.find c ~kind:"unit" ~key = Some [ "payload"; string_of_int i ])
  done

(* {1 Primitives shared with the work queue} *)

let test_mkdir_p_race_tolerant () =
  let dir = fresh_dir () in
  let deep = Filename.concat dir "a/b/c" in
  let pool = P.create ~jobs:4 () in
  Fun.protect
    ~finally:(fun () -> P.shutdown pool)
    (fun () -> P.parallel_for pool ~n:16 (fun _ -> Ca.mkdir_p deep));
  Alcotest.(check bool) "deep path exists" true
    (Sys.file_exists deep && Sys.is_directory deep);
  (* repeated calls stay no-ops *)
  Ca.mkdir_p deep;
  Ca.mkdir_p dir;
  Alcotest.(check bool) "still a directory" true (Sys.is_directory deep)

let test_publish_exclusive_single_winner () =
  let dir = fresh_dir () in
  Ca.mkdir_p dir;
  let path = Filename.concat dir "claim" in
  let wins = Atomic.make 0 in
  let pool = P.create ~jobs:4 () in
  Fun.protect
    ~finally:(fun () -> P.shutdown pool)
    (fun () ->
      P.parallel_for pool ~n:16 (fun i ->
          if Ca.publish_exclusive path (Printf.sprintf "owner %d\n" i) then
            Atomic.incr wins));
  Alcotest.(check int) "exactly one writer wins" 1 (Atomic.get wins);
  Alcotest.(check bool) "loser content never published" true
    (match read_file path with
    | s -> String.length s > 6 && String.sub s 0 6 = "owner "
    | exception Sys_error _ -> false);
  Alcotest.(check (list string)) "losers' temps cleaned up" []
    (tmp_litter dir);
  (* replace_file overwrites unconditionally and atomically *)
  Ca.replace_file path "renewed\n";
  Alcotest.(check string) "replace_file overwrites" "renewed\n"
    (read_file path);
  Alcotest.(check (list string)) "replace leaves no temp" [] (tmp_litter dir)

let () =
  Alcotest.run "cache"
    [
      ( "hits",
        [
          Alcotest.test_case "store/find bit-identical" `Quick
            test_store_find_bit_identical;
          Alcotest.test_case "memoize hit skips compute" `Quick
            test_memoize_hit_skips_compute;
        ] );
      ( "damage",
        [
          Alcotest.test_case "truncated -> miss -> healed" `Quick
            test_truncated_entry_is_miss_then_rewritten;
          Alcotest.test_case "bit flip -> miss" `Quick test_bit_flip_is_miss;
          Alcotest.test_case "decode failure -> recompute" `Quick
            test_decode_failure_recomputes;
        ] );
      ("keys", [ Alcotest.test_case "sensitivity" `Quick test_key_sensitivity ]);
      ( "concurrency",
        [
          Alcotest.test_case "same-key writers, 4 jobs" `Quick
            test_concurrent_same_key_writers;
        ] );
      ( "disabled",
        [ Alcotest.test_case "transparent" `Quick test_disabled_is_transparent ] );
      ( "maintenance",
        [
          Alcotest.test_case "gc" `Quick test_gc_removes_damage_and_all;
          Alcotest.test_case "gc exact tmp parse" `Quick
            test_gc_never_misreads_entries_as_temps;
          Alcotest.test_case "gc vs live writers" `Quick
            test_gc_racing_live_writers;
        ] );
      ( "primitives",
        [
          Alcotest.test_case "mkdir_p race" `Quick test_mkdir_p_race_tolerant;
          Alcotest.test_case "publish_exclusive single winner" `Quick
            test_publish_exclusive_single_winner;
        ] );
    ]
