(* Serving-stack tests: the wire codec (round-trips, malformed/truncated/
   oversized frames), the clock-free batcher policy, the read-only
   serve-time model view, and live socket servers under concurrent
   clients.

   The concurrency suite's contract is the PR 7 acceptance criterion:
   every response that crosses the wire — classes and Monte-Carlo
   quantiles alike — is bit-identical to the single-threaded in-process
   answer, for any pool size and either tensor backend.  The dune rules
   re-run this executable under REPRO_JOBS 1/4 and PNN_BACKEND=bigarray. *)

module P = Serving.Protocol
module B = Serving.Batcher
module SM = Serving.Serve_model

let surrogate =
  lazy
    (let dataset = Surrogate.Pipeline.generate_dataset ~n:250 () in
     let model, _ =
       Surrogate.Pipeline.train_surrogate ~arch:[ 10; 8; 6; 4 ] ~max_epochs:300
         (Rng.create 42) dataset
     in
     model)

let make_net ?(seed = 7) ~inputs ~outputs () =
  Pnn.Network.create (Rng.create seed) Pnn.Config.default (Lazy.force surrogate)
    ~inputs ~outputs

let bits = Int64.bits_of_float

let float_bits =
  Alcotest.testable (fun fmt f -> Fmt.pf fmt "%h" f) (fun a b -> bits a = bits b)

(* substring check for error-message assertions *)
let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let nominal_noise net =
  Pnn.Noise.none ~theta_shapes:(Pnn.Network.theta_shapes net)

let predict_alone net x =
  (Pnn.Network.predict net ~noise:(nominal_noise net) (Tensor.of_array x)).(0)

let features_of ~inputs seed =
  let rng = Rng.create seed in
  Array.init inputs (fun _ -> Rng.float rng)

(* {1 Protocol codec} *)

let check_request_roundtrip msg req =
  let frame = P.encode_request req in
  (* strip the 4-byte length prefix to get the payload *)
  let payload = Bytes.sub frame 4 (Bytes.length frame - 4) in
  match P.decode_request payload with
  | Error e -> Alcotest.failf "%s: decode failed: %s" msg e
  | Ok req' -> (
      match (req, req') with
      | P.Predict { id; features }, P.Predict { id = id'; features = f' } ->
          Alcotest.(check int32) (msg ^ " id") id id';
          Alcotest.(check (array float_bits)) (msg ^ " features") features f'
      | ( P.Predict_mc { id; features; draws; seed },
          P.Predict_mc { id = id'; features = f'; draws = d'; seed = s' } ) ->
          Alcotest.(check int32) (msg ^ " id") id id';
          Alcotest.(check int) (msg ^ " draws") draws d';
          Alcotest.(check int32) (msg ^ " seed") seed s';
          Alcotest.(check (array float_bits)) (msg ^ " features") features f'
      | P.Stats { id }, P.Stats { id = id' } | P.Shutdown { id }, P.Shutdown { id = id' }
        ->
          Alcotest.(check int32) (msg ^ " id") id id'
      | _ -> Alcotest.failf "%s: variant changed across the wire" msg)

let test_request_roundtrips () =
  check_request_roundtrip "predict"
    (P.Predict { id = 42l; features = [| 0.0; -0.0; 1.5e-300; 3.25 |] });
  check_request_roundtrip "predict non-finite"
    (P.Predict
       { id = 1l; features = [| Float.nan; Float.infinity; Float.neg_infinity |] });
  check_request_roundtrip "predict zero features"
    (P.Predict { id = 7l; features = [||] });
  check_request_roundtrip "predict_mc"
    (P.Predict_mc { id = 3l; features = [| 0.25; 0.5 |]; draws = 64; seed = 99l });
  check_request_roundtrip "stats" (P.Stats { id = 5l });
  check_request_roundtrip "shutdown" (P.Shutdown { id = 0l })

let check_response_roundtrip msg resp =
  let frame = P.encode_response resp in
  let payload = Bytes.sub frame 4 (Bytes.length frame - 4) in
  match P.decode_response payload with
  | Error e -> Alcotest.failf "%s: decode failed: %s" msg e
  | Ok resp' -> (
      match (resp, resp') with
      | P.Class { id; cls }, P.Class { id = id'; cls = cls' } ->
          Alcotest.(check int32) (msg ^ " id") id id';
          Alcotest.(check int) (msg ^ " cls") cls cls'
      | ( P.Mc_class { id; cls; mean_p; q05; q95 },
          P.Mc_class { id = id'; cls = c'; mean_p = m'; q05 = l'; q95 = h' } ) ->
          Alcotest.(check int32) (msg ^ " id") id id';
          Alcotest.(check int) (msg ^ " cls") cls c';
          Alcotest.(check float_bits) (msg ^ " mean_p") mean_p m';
          Alcotest.(check float_bits) (msg ^ " q05") q05 l';
          Alcotest.(check float_bits) (msg ^ " q95") q95 h'
      | P.Stats_reply { id; stats }, P.Stats_reply { id = id'; stats = s' } ->
          Alcotest.(check int32) (msg ^ " id") id id';
          Alcotest.(check int64) (msg ^ " served") stats.P.served s'.P.served;
          Alcotest.(check (array int64))
            (msg ^ " occupancy") stats.P.occupancy s'.P.occupancy
      | P.Shutdown_ack { id }, P.Shutdown_ack { id = id' } ->
          Alcotest.(check int32) (msg ^ " id") id id'
      | P.Error { id; message }, P.Error { id = id'; message = m' } ->
          Alcotest.(check int32) (msg ^ " id") id id';
          Alcotest.(check string) (msg ^ " message") message m'
      | _ -> Alcotest.failf "%s: variant changed across the wire" msg)

let test_response_roundtrips () =
  check_response_roundtrip "class" (P.Class { id = 9l; cls = 2 });
  check_response_roundtrip "mc"
    (P.Mc_class { id = 1l; cls = 0; mean_p = 0.375; q05 = 0.25; q95 = 0.5 });
  check_response_roundtrip "stats"
    (P.Stats_reply
       {
         id = 2l;
         stats =
           {
             P.served = 100L;
             mc_served = 3L;
             batches = 11L;
             errors = 1L;
             occupancy = [| 5L; 0L; 2L |];
           };
       });
  check_response_roundtrip "ack" (P.Shutdown_ack { id = 4l });
  check_response_roundtrip "error" (P.Error { id = 0l; message = "boom" })

let expect_decode_error msg payload =
  match P.decode_request payload with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: malformed payload decoded" msg

let test_malformed_payloads () =
  expect_decode_error "empty" Bytes.empty;
  (* wrong protocol version *)
  let frame = P.encode_request (P.Stats { id = 1l }) in
  let payload = Bytes.sub frame 4 (Bytes.length frame - 4) in
  let bad_ver = Bytes.copy payload in
  Bytes.set_uint8 bad_ver 0 (P.version + 1);
  expect_decode_error "bad version" bad_ver;
  (* unknown request kind *)
  let bad_kind = Bytes.copy payload in
  Bytes.set_uint8 bad_kind 1 200;
  expect_decode_error "unknown kind" bad_kind;
  (* header promises 4 features but carries 2 *)
  let b = Buffer.create 64 in
  Buffer.add_uint8 b P.version;
  Buffer.add_uint8 b 1 (* predict *);
  Buffer.add_int32_be b 1l;
  Buffer.add_uint16_be b 4;
  Buffer.add_int64_be b 0L;
  Buffer.add_int64_be b 0L;
  expect_decode_error "truncated features" (Buffer.to_bytes b);
  (* feature count above the protocol bound *)
  let b = Buffer.create 64 in
  Buffer.add_uint8 b P.version;
  Buffer.add_uint8 b 1;
  Buffer.add_int32_be b 1l;
  Buffer.add_uint16_be b (P.max_features + 1);
  expect_decode_error "oversized feature count" (Buffer.to_bytes b)

let test_reader_incremental () =
  (* two frames delivered one byte at a time must come out intact *)
  let f1 = P.encode_request (P.Predict { id = 1l; features = [| 0.5; 0.25 |] }) in
  let f2 = P.encode_request (P.Shutdown { id = 2l }) in
  let stream = Bytes.cat f1 f2 in
  let rd = P.reader () in
  let got = ref [] in
  Bytes.iteri
    (fun i _ ->
      P.feed rd stream ~pos:i ~len:1;
      match P.next_frame rd with
      | Ok (Some payload) -> got := payload :: !got
      | Ok None -> ()
      | Error e -> Alcotest.failf "framing error mid-stream: %s" e)
    stream;
  match List.rev !got with
  | [ p1; p2 ] ->
      (match P.decode_request p1 with
      | Ok (P.Predict { id = 1l; _ }) -> ()
      | _ -> Alcotest.fail "first frame mangled");
      (match P.decode_request p2 with
      | Ok (P.Shutdown { id = 2l }) -> ()
      | _ -> Alcotest.fail "second frame mangled")
  | frames -> Alcotest.failf "expected 2 frames, got %d" (List.length frames)

let test_reader_oversized_frame () =
  let rd = P.reader () in
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int (P.max_frame + 1));
  P.feed rd hdr ~pos:0 ~len:4;
  (match P.next_frame rd with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized declared length accepted");
  (* a negative declared length is equally unrecoverable *)
  let rd = P.reader () in
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (-1l);
  P.feed rd hdr ~pos:0 ~len:4;
  match P.next_frame rd with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative declared length accepted"

let test_reader_partial_is_not_an_error () =
  let rd = P.reader () in
  let frame = P.encode_request (P.Stats { id = 3l }) in
  P.feed rd frame ~pos:0 ~len:(Bytes.length frame - 1);
  (match P.next_frame rd with
  | Ok None -> ()
  | Ok (Some _) -> Alcotest.fail "incomplete frame yielded"
  | Error e -> Alcotest.failf "incomplete frame errored: %s" e);
  P.feed rd frame ~pos:(Bytes.length frame - 1) ~len:1;
  match P.next_frame rd with
  | Ok (Some _) -> ()
  | _ -> Alcotest.fail "completed frame not yielded"

(* {1 Batcher policy} *)

let test_batcher_fills_at_max_batch () =
  let b = B.create ~max_batch:4 ~linger:10.0 in
  for i = 0 to 9 do
    B.push b ~now:0.0 i
  done;
  Alcotest.(check (list int)) "first full batch" [ 0; 1; 2; 3 ] (B.pop_ready b ~now:0.0);
  Alcotest.(check (list int)) "second full batch" [ 4; 5; 6; 7 ] (B.pop_ready b ~now:0.0);
  Alcotest.(check (list int)) "remainder not ready (linger)" [] (B.pop_ready b ~now:0.0);
  Alcotest.(check int) "remainder pending" 2 (B.pending b)

let test_batcher_linger_deadline () =
  let b = B.create ~max_batch:64 ~linger:0.5 in
  B.push b ~now:100.0 "a";
  B.push b ~now:100.2 "b";
  Alcotest.(check (option float_bits))
    "deadline = admission + linger" (Some 100.5) (B.next_deadline b);
  Alcotest.(check (list string)) "before the deadline" [] (B.pop_ready b ~now:100.49);
  Alcotest.(check (list string))
    "deadline releases everything pending" [ "a"; "b" ] (B.pop_ready b ~now:100.5);
  Alcotest.(check (option float_bits)) "empty again" None (B.next_deadline b)

let test_batcher_drain_chunks () =
  let b = B.create ~max_batch:3 ~linger:1.0 in
  for i = 0 to 7 do
    B.push b ~now:0.0 i
  done;
  Alcotest.(check (list (list int)))
    "drain chunks at max_batch in admission order"
    [ [ 0; 1; 2 ]; [ 3; 4; 5 ]; [ 6; 7 ] ]
    (B.drain b);
  Alcotest.(check int) "drained" 0 (B.pending b)

let test_batcher_validation () =
  let expect_invalid msg f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s accepted" msg
  in
  expect_invalid "max_batch 0" (fun () -> B.create ~max_batch:0 ~linger:0.1);
  expect_invalid "negative linger" (fun () -> B.create ~max_batch:4 ~linger:(-1.0));
  expect_invalid "nan linger" (fun () -> B.create ~max_batch:4 ~linger:Float.nan)

(* {1 Serve_model: the read-only serve-time view} *)

let test_padded_rows () =
  List.iter
    (fun (k, want) ->
      Alcotest.(check int) (Printf.sprintf "padded_rows %d" k) want (SM.padded_rows k))
    [ (1, 1); (2, 2); (3, 4); (5, 8); (8, 8); (9, 16); (64, 64); (65, 128) ]

let test_predict_batch_matches_predict () =
  let net = make_net ~inputs:4 ~outputs:3 () in
  let model = SM.of_network net in
  List.iter
    (fun k ->
      let rows = Array.init k (fun i -> features_of ~inputs:4 (1000 + i)) in
      let batched = SM.predict_batch model rows in
      Array.iteri
        (fun i row ->
          Alcotest.(check int)
            (Printf.sprintf "row %d of %d-batch" i k)
            (predict_alone net row) batched.(i))
        rows)
    [ 1; 3; 8; 13 ]

let test_predict_mc_pool_size_invariant () =
  let net = make_net ~inputs:4 ~outputs:3 () in
  let model = SM.of_network net in
  let x = features_of ~inputs:4 4242 in
  let p1 = Parallel.Pool.create ~jobs:1 () in
  let p3 = Parallel.Pool.create ~jobs:3 () in
  let mc pool =
    SM.predict_mc model ~pool ~model:(Pnn.Variation.Uniform 0.1) ~draws:24 ~seed:11 x
  in
  let a = mc p1 and b = mc p3 in
  Parallel.Pool.shutdown p1;
  Parallel.Pool.shutdown p3;
  Alcotest.(check int) "cls" a.SM.cls b.SM.cls;
  Alcotest.(check float_bits) "mean_p" a.SM.mean_p b.SM.mean_p;
  Alcotest.(check float_bits) "q05" a.SM.q05 b.SM.q05;
  Alcotest.(check float_bits) "q95" a.SM.q95 b.SM.q95

let with_temp_dir f =
  let dir = Filename.temp_file "pnn_serve_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let test_load_verifies_digest () =
  with_temp_dir (fun dir ->
      let net = make_net ~inputs:4 ~outputs:3 () in
      let path = Filename.concat dir "model.pnn" in
      Pnn.Serialize.save_file net path;
      let good = Pnn.Serialize.digest net in
      let model = SM.load ~expect_digest:good (Lazy.force surrogate) path in
      Alcotest.(check string) "digest preserved" good (SM.digest model);
      (match SM.load ~expect_digest:"deadbeef" (Lazy.force surrogate) path with
      | _ -> Alcotest.fail "digest mismatch accepted"
      | exception Failure _ -> ());
      (* a truncated file must refuse cleanly, not load garbage *)
      let full = In_channel.with_open_text path In_channel.input_all in
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc
            (String.sub full 0 (String.length full * 2 / 3)));
      match SM.load (Lazy.force surrogate) path with
      | _ -> Alcotest.fail "truncated model loaded"
      | exception Failure msg ->
          Alcotest.(check bool)
            "refusal names the file" true
            (contains msg "model.pnn"))

(* {1 Live servers over a socket} *)

type live = {
  server : Serving.Server.t;
  domain : unit Domain.t;
  sock : string;
  model : SM.t;
  net : Pnn.Network.t;
}

let start_server ?(max_batch = 8) ?(linger = 0.0005) dir =
  let net = make_net ~inputs:4 ~outputs:3 () in
  let model = SM.of_network net in
  let sock = Filename.concat dir "serve.sock" in
  let config =
    { Serving.Server.default_config with max_batch; linger }
  in
  let server = Serving.Server.create ~config model (Unix.ADDR_UNIX sock) in
  let domain = Domain.spawn (fun () -> Serving.Server.run server) in
  { server; domain; sock; model; net }

let stop_server live =
  Serving.Server.stop live.server;
  Domain.join live.domain

let test_wire_matches_inprocess () =
  with_temp_dir (fun dir ->
      let live = start_server dir in
      Fun.protect ~finally:(fun () -> stop_server live) @@ fun () ->
      let client = Serving.Client.connect (Unix.ADDR_UNIX live.sock) in
      Fun.protect ~finally:(fun () -> Serving.Client.close client) @@ fun () ->
      for i = 0 to 19 do
        let x = features_of ~inputs:4 (500 + i) in
        let wire = Serving.Client.predict client ~id:(Int32.of_int i) x in
        let direct = (SM.predict_batch live.model [| x |]).(0) in
        Alcotest.(check int) (Printf.sprintf "request %d" i) direct wire
      done;
      (* Monte-Carlo answers must also be bit-identical to the in-process
         path, quantiles included *)
      let x = features_of ~inputs:4 900 in
      let cls, mean_p, q05, q95 =
        Serving.Client.predict_mc client ~id:77l ~draws:16 ~seed:13l x
      in
      let direct =
        SM.predict_mc live.model
          ~pool:(Parallel.get_pool ())
          ~model:Serving.Server.default_config.Serving.Server.mc_model ~draws:16
          ~seed:13 x
      in
      Alcotest.(check int) "mc cls" direct.SM.cls cls;
      Alcotest.(check float_bits) "mc mean_p" direct.SM.mean_p mean_p;
      Alcotest.(check float_bits) "mc q05" direct.SM.q05 q05;
      Alcotest.(check float_bits) "mc q95" direct.SM.q95 q95)

let test_wire_rejects_bad_requests () =
  with_temp_dir (fun dir ->
      let live = start_server dir in
      Fun.protect ~finally:(fun () -> stop_server live) @@ fun () ->
      let client = Serving.Client.connect (Unix.ADDR_UNIX live.sock) in
      Fun.protect ~finally:(fun () -> Serving.Client.close client) @@ fun () ->
      (* wrong feature width: answered, connection stays up *)
      (match Serving.Client.rpc client (P.Predict { id = 1l; features = [| 0.5 |] }) with
      | P.Error { id = 1l; message } ->
          Alcotest.(check bool)
            "message names the widths" true
            (contains message "expected 4 features")
      | _ -> Alcotest.fail "width mismatch not rejected");
      (* zero features is a protocol-legal request the model must refuse *)
      (match Serving.Client.rpc client (P.Predict { id = 2l; features = [||] }) with
      | P.Error { id = 2l; _ } -> ()
      | _ -> Alcotest.fail "zero-feature request not rejected");
      (* malformed payload inside an intact frame: answered with id 0, and
         the connection keeps working afterwards *)
      let bad = Buffer.create 8 in
      Buffer.add_uint8 bad P.version;
      Buffer.add_uint8 bad 250;
      Serving.Client.send_raw client
        (let payload = Buffer.to_bytes bad in
         let framed = Bytes.create (4 + Bytes.length payload) in
         Bytes.set_int32_be framed 0 (Int32.of_int (Bytes.length payload));
         Bytes.blit payload 0 framed 4 (Bytes.length payload);
         framed);
      (match Serving.Client.recv client with
      | P.Error { id = 0l; _ } -> ()
      | _ -> Alcotest.fail "malformed payload not answered with id 0");
      let x = features_of ~inputs:4 31 in
      let wire = Serving.Client.predict client ~id:3l x in
      let direct = (SM.predict_batch live.model [| x |]).(0) in
      Alcotest.(check int) "connection survives a bad payload" direct wire;
      (* oversized declared frame length: answered, then the server hangs up
         because the stream cannot resync *)
      let huge = Bytes.create 4 in
      Bytes.set_int32_be huge 0 (Int32.of_int (P.max_frame + 1));
      Serving.Client.send_raw client huge;
      (match Serving.Client.recv client with
      | P.Error { id = 0l; _ } -> ()
      | _ -> Alcotest.fail "oversized frame not answered");
      match Serving.Client.recv client with
      | exception Failure _ -> () (* EOF: connection dropped, as documented *)
      | _ -> Alcotest.fail "server kept an unsyncable connection open")

let test_concurrent_clients_bit_identical () =
  with_temp_dir (fun dir ->
      let live = start_server ~max_batch:8 dir in
      Fun.protect ~finally:(fun () -> stop_server live) @@ fun () ->
      let n_clients = 4 and per_client = 24 in
      (* every client pipelines its requests, so the server sees interleaved
         traffic from all of them and coalesces across connections *)
      let worker c =
        let client = Serving.Client.connect (Unix.ADDR_UNIX live.sock) in
        Fun.protect ~finally:(fun () -> Serving.Client.close client) @@ fun () ->
        for i = 0 to per_client - 1 do
          Serving.Client.send client
            (P.Predict
               { id = Int32.of_int i; features = features_of ~inputs:4 ((c * 100) + i) })
        done;
        let answers = Array.make per_client (-1) in
        for _ = 1 to per_client do
          match Serving.Client.recv client with
          | P.Class { id; cls } -> answers.(Int32.to_int id) <- cls
          | r -> Alcotest.failf "client %d: unexpected response %ld" c (P.response_id r)
        done;
        answers
      in
      let domains = Array.init n_clients (fun c -> Domain.spawn (fun () -> worker c)) in
      let got = Array.map Domain.join domains in
      (* the single-threaded reference answers, one request at a time *)
      Array.iteri
        (fun c answers ->
          Array.iteri
            (fun i cls ->
              let x = features_of ~inputs:4 ((c * 100) + i) in
              let direct = predict_alone live.net x in
              Alcotest.(check int)
                (Printf.sprintf "client %d request %d" c i)
                direct cls)
            answers)
        got;
      let probe = Serving.Client.connect (Unix.ADDR_UNIX live.sock) in
      Fun.protect ~finally:(fun () -> Serving.Client.close probe) @@ fun () ->
      let stats = Serving.Client.stats probe in
      Alcotest.(check int64)
        "every request was served exactly once"
        (Int64.of_int (n_clients * per_client))
        stats.P.served;
      Alcotest.(check int64) "no errors" 0L stats.P.errors)

(* Regression for the counter representation: served/mc_served/batches/
   errors/occupancy are Atomics written by the loop domain, and
   [Server.stats] reads them from any other domain.  Sequential RPCs make
   every count exact: each predict flushes a batch of one. *)
let test_stats_counters_atomic () =
  with_temp_dir (fun dir ->
      let live = start_server ~max_batch:4 dir in
      Fun.protect ~finally:(fun () -> stop_server live) @@ fun () ->
      let client = Serving.Client.connect (Unix.ADDR_UNIX live.sock) in
      Fun.protect ~finally:(fun () -> Serving.Client.close client) @@ fun () ->
      let n = 7 in
      for i = 0 to n - 1 do
        ignore
          (Serving.Client.predict client ~id:(Int32.of_int i)
             (features_of ~inputs:4 i))
      done;
      for i = 0 to 1 do
        ignore
          (Serving.Client.predict_mc client ~id:(Int32.of_int (100 + i))
             ~draws:8 ~seed:5l
             (features_of ~inputs:4 (50 + i)))
      done;
      (match Serving.Client.rpc client (P.Predict { id = 99l; features = [| 1.0 |] }) with
      | P.Error _ -> ()
      | _ -> Alcotest.fail "bad width must error");
      (* cross-domain read: the loop domain wrote these, we read them here *)
      let s = Serving.Server.stats live.server in
      Alcotest.(check int64) "served" (Int64.of_int n) s.P.served;
      Alcotest.(check int64) "mc_served" 2L s.P.mc_served;
      Alcotest.(check int64) "batches" (Int64.of_int n) s.P.batches;
      Alcotest.(check int64) "errors" 1L s.P.errors;
      Alcotest.(check int64) "occupancy(1)" (Int64.of_int n) s.P.occupancy.(0);
      Array.iteri
        (fun i c -> if i > 0 then Alcotest.(check int64) "occupancy rest" 0L c)
        s.P.occupancy;
      (* and the wire view agrees with the direct view *)
      let wire = Serving.Client.stats client in
      Alcotest.(check int64) "wire served" s.P.served wire.P.served;
      Alcotest.(check int64) "wire batches" s.P.batches wire.P.batches)

let test_shutdown_request_stops_server () =
  with_temp_dir (fun dir ->
      let live = start_server dir in
      let client = Serving.Client.connect (Unix.ADDR_UNIX live.sock) in
      let x = features_of ~inputs:4 1 in
      let (_ : int) = Serving.Client.predict client ~id:1l x in
      Serving.Client.shutdown client;
      Serving.Client.close client;
      (* run returns on its own — no Server.stop needed *)
      Domain.join live.domain;
      Alcotest.(check int64)
        "served one request before stopping" 1L
        (Serving.Server.stats live.server).P.served)

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "request round-trips" `Quick test_request_roundtrips;
          Alcotest.test_case "response round-trips" `Quick test_response_roundtrips;
          Alcotest.test_case "malformed payloads" `Quick test_malformed_payloads;
          Alcotest.test_case "incremental reader" `Quick test_reader_incremental;
          Alcotest.test_case "oversized frame" `Quick test_reader_oversized_frame;
          Alcotest.test_case "partial frame" `Quick test_reader_partial_is_not_an_error;
        ] );
      ( "batcher",
        [
          Alcotest.test_case "fills at max_batch" `Quick test_batcher_fills_at_max_batch;
          Alcotest.test_case "linger deadline" `Quick test_batcher_linger_deadline;
          Alcotest.test_case "drain chunks" `Quick test_batcher_drain_chunks;
          Alcotest.test_case "validation" `Quick test_batcher_validation;
        ] );
      ( "serve-model",
        [
          Alcotest.test_case "padded rows" `Quick test_padded_rows;
          Alcotest.test_case "batch matches predict" `Quick
            test_predict_batch_matches_predict;
          Alcotest.test_case "mc pool-size invariant" `Quick
            test_predict_mc_pool_size_invariant;
          Alcotest.test_case "load verifies digest" `Quick test_load_verifies_digest;
        ] );
      ( "wire",
        [
          Alcotest.test_case "matches in-process" `Quick test_wire_matches_inprocess;
          Alcotest.test_case "rejects bad requests" `Quick test_wire_rejects_bad_requests;
          Alcotest.test_case "atomic stats counters" `Quick
            test_stats_counters_atomic;
          Alcotest.test_case "concurrent clients" `Quick
            test_concurrent_clients_bit_identical;
          Alcotest.test_case "shutdown request" `Quick test_shutdown_request_stops_server;
        ] );
    ]
