(* Tests for the printed-neural-network core. *)

module A = Autodiff
module T = Tensor
module C = Pnn.Config

let surrogate =
  lazy
    (let dataset = Surrogate.Pipeline.generate_dataset ~n:250 () in
     let model, _ =
       Surrogate.Pipeline.train_surrogate ~arch:[ 10; 8; 6; 4 ] ~max_epochs:300
         (Rng.create 42) dataset
     in
     model)

let config = C.default
let ones_noise net = Pnn.Noise.none ~theta_shapes:(Pnn.Network.theta_shapes net)

let make_net ?(seed = 1) ?(config = config) ~inputs ~outputs () =
  Pnn.Network.create (Rng.create seed) config (Lazy.force surrogate) ~inputs ~outputs

(* {1 Config} *)

let test_config_helpers () =
  Alcotest.(check bool) "default learnable" true (C.learnable C.default);
  Alcotest.(check bool) "non-learnable" false (C.learnable (C.with_learnable C.default false));
  Alcotest.(check (float 0.0)) "epsilon" 0.07 (C.with_epsilon C.default 0.07).C.epsilon;
  Alcotest.(check (float 0.0)) "paper lr" 0.1 (C.paper ()).C.lr_theta

(* {1 Noise} *)

let test_noise_none_is_ones () =
  let n = Pnn.Noise.none ~theta_shapes:[ (3, 2); (4, 1) ] in
  Alcotest.(check int) "two layers" 2 (List.length n);
  List.iter
    (fun ln ->
      Alcotest.(check (float 0.0)) "theta ones" 1.0 (T.mean ln.Pnn.Noise.theta);
      Alcotest.(check (float 0.0)) "omega ones" 1.0 (T.mean ln.Pnn.Noise.act_omega))
    n

let test_noise_draw_bounds () =
  let rng = Rng.create 3 in
  let n = Pnn.Noise.draw rng ~epsilon:0.1 ~theta_shapes:[ (6, 4) ] in
  List.iter
    (fun ln ->
      Array.iter
        (fun v ->
          if v < 0.9 || v > 1.1 then Alcotest.failf "noise out of band: %f" v)
        (T.to_array ln.Pnn.Noise.theta))
    n

let test_noise_zero_epsilon_is_none () =
  let rng = Rng.create 3 in
  let n = Pnn.Noise.draw rng ~epsilon:0.0 ~theta_shapes:[ (2, 2) ] in
  List.iter
    (fun ln -> Alcotest.(check (float 0.0)) "ones" 1.0 (T.mean ln.Pnn.Noise.theta))
    n

let test_noise_invalid_epsilon () =
  Alcotest.check_raises "eps" (Invalid_argument "Noise.draw: epsilon outside [0,1)")
    (fun () ->
      ignore (Pnn.Noise.draw (Rng.create 1) ~epsilon:1.5 ~theta_shapes:[ (1, 1) ]))

(* {1 Nonlinear} *)

let test_nonlinear_printable_feasible () =
  let nl = Pnn.Nonlinear.create (Lazy.force surrogate) in
  let omega = Pnn.Nonlinear.omega_values nl in
  Alcotest.(check bool) "printable omega feasible" true
    (Surrogate.Design_space.contains omega)

let test_nonlinear_eta_changes_with_w () =
  let s = Lazy.force surrogate in
  let a = Pnn.Nonlinear.create s in
  let b = Pnn.Nonlinear.create_from s ~w_init:[| 2.0; -2.0; 1.0; -1.0; 2.0; 1.5; -0.5 |] in
  let ea = Pnn.Nonlinear.eta_values a and eb = Pnn.Nonlinear.eta_values b in
  Alcotest.(check bool) "different circuits -> different eta" true
    (Float.abs (ea.Fit.Ptanh.eta1 -. eb.Fit.Ptanh.eta1) > 1e-6
    || Float.abs (ea.Fit.Ptanh.eta4 -. eb.Fit.Ptanh.eta4) > 1e-6)

let test_nonlinear_apply_inv_negates () =
  let nl = Pnn.Nonlinear.create (Lazy.force surrogate) in
  let noise = T.ones 1 7 in
  let x = A.const (T.of_array [| 0.1; 0.5; 0.9 |]) in
  let fwd = A.value (Pnn.Nonlinear.apply nl ~noise x) in
  let inv = A.value (Pnn.Nonlinear.apply_inv nl ~noise x) in
  Alcotest.(check bool) "inv = -ptanh" true (T.equal ~eps:1e-12 inv (T.neg fwd))

let test_nonlinear_gradient_to_w () =
  let nl = Pnn.Nonlinear.create (Lazy.force surrogate) in
  let noise = T.ones 1 7 in
  let x = A.const (T.of_array [| 0.2; 0.6 |]) in
  A.backward (A.sum (Pnn.Nonlinear.apply nl ~noise x));
  let g = A.grad (Pnn.Nonlinear.raw_param nl) in
  Alcotest.(check bool) "gradient reaches w" true (T.sum (T.map Float.abs g) > 0.0)

let test_nonlinear_snapshot_restore () =
  let nl = Pnn.Nonlinear.create (Lazy.force surrogate) in
  let snap = Pnn.Nonlinear.snapshot nl in
  let v = A.value (Pnn.Nonlinear.raw_param nl) in
  T.set v 0 0 3.0;
  Pnn.Nonlinear.restore nl snap;
  Alcotest.(check (float 0.0)) "restored" 0.0 (T.get v 0 0)

(* {1 Layer} *)

let test_layer_shapes () =
  let layer =
    Pnn.Layer.create (Rng.create 2) config (Lazy.force surrogate) ~inputs:4 ~outputs:3
  in
  Alcotest.(check (pair int int)) "theta shape" (6, 3) (Pnn.Layer.theta_shape layer);
  Alcotest.(check int) "inputs" 4 (Pnn.Layer.inputs layer);
  Alcotest.(check int) "outputs" 3 (Pnn.Layer.outputs layer)

let test_layer_forward_shape_and_range () =
  let layer =
    Pnn.Layer.create (Rng.create 2) config (Lazy.force surrogate) ~inputs:4 ~outputs:3
  in
  let noise =
    List.hd (Pnn.Noise.none ~theta_shapes:[ Pnn.Layer.theta_shape layer ])
  in
  let x = A.const (T.uniform (Rng.create 5) 8 4 ~lo:0.0 ~hi:1.0) in
  let y = A.value (Pnn.Layer.forward config layer ~noise x) in
  Alcotest.(check (pair int int)) "batch preserved" (8, 3) (T.shape y);
  (* the ptanh family stays within the supply rails *)
  Alcotest.(check bool) "bounded" true (T.min_value y > -1.1 && T.max_value y < 1.1)

let test_layer_input_width_check () =
  let layer =
    Pnn.Layer.create (Rng.create 2) config (Lazy.force surrogate) ~inputs:4 ~outputs:2
  in
  let noise = List.hd (Pnn.Noise.none ~theta_shapes:[ Pnn.Layer.theta_shape layer ]) in
  Alcotest.check_raises "width" (Invalid_argument "Layer.forward: input width mismatch")
    (fun () ->
      ignore (Pnn.Layer.forward config layer ~noise (A.const (T.ones 2 3))))

let test_printed_theta_in_printable_set () =
  let layer =
    Pnn.Layer.create (Rng.create 7) config (Lazy.force surrogate) ~inputs:5 ~outputs:4
  in
  (* push some raw values outside the feasible set *)
  let v = A.value layer.Pnn.Layer.theta in
  T.set v 0 0 3.7;
  T.set v 1 0 (-2.0);
  T.set v 2 0 0.004;
  T.set v 3 0 0.007;
  let printed = Pnn.Layer.printed_theta config layer in
  Array.iter
    (fun g ->
      let mag = Float.abs g in
      if not (Float.equal mag 0.0 || (mag >= config.C.g_min -. 1e-12 && mag <= config.C.g_max +. 1e-12))
      then Alcotest.failf "unprintable conductance %f" g)
    (T.to_array printed);
  Alcotest.(check (float 0.0)) "overflow clipped" 1.0 (T.get printed 0 0);
  Alcotest.(check (float 0.0)) "negative clipped" (-1.0) (T.get printed 1 0);
  Alcotest.(check (float 0.0)) "tiny zeroed" 0.0 (T.get printed 2 0);
  Alcotest.(check (float 0.0)) "sub-gmin snapped" 0.01 (T.get printed 3 0)

let test_layer_gradients_flow () =
  let layer =
    Pnn.Layer.create (Rng.create 11) config (Lazy.force surrogate) ~inputs:3 ~outputs:2
  in
  let noise = List.hd (Pnn.Noise.none ~theta_shapes:[ Pnn.Layer.theta_shape layer ]) in
  let x = A.const (T.uniform (Rng.create 5) 4 3 ~lo:0.0 ~hi:1.0) in
  A.backward (A.sum (Pnn.Layer.forward config layer ~noise x));
  let gsum p = T.sum (T.map Float.abs (A.grad p)) in
  Alcotest.(check bool) "theta grad" true (gsum layer.Pnn.Layer.theta > 0.0);
  List.iter
    (fun p -> Alcotest.(check bool) "omega grads" true (gsum p > 0.0))
    (Pnn.Layer.params_omega layer)

(* {1 Network} *)

let test_network_topology () =
  let net = make_net ~inputs:5 ~outputs:3 () in
  Alcotest.(check int) "two layers" 2 (List.length (Pnn.Network.layers net));
  Alcotest.(check (list (pair int int)))
    "theta shapes: (in+2) x hidden, (hidden+2) x out"
    [ (7, 3); (5, 3) ]
    (Pnn.Network.theta_shapes net)

let test_network_param_groups () =
  let net = make_net ~inputs:4 ~outputs:2 () in
  Alcotest.(check int) "theta params" 2 (List.length (Pnn.Network.params_theta net));
  Alcotest.(check int) "omega params: 2 per layer" 4
    (List.length (Pnn.Network.params_omega net))

let test_network_noise_changes_output () =
  let net = make_net ~inputs:4 ~outputs:3 () in
  let x = T.uniform (Rng.create 9) 6 4 ~lo:0.0 ~hi:1.0 in
  let clean = A.value (Pnn.Network.logits net ~noise:(ones_noise net) x) in
  let noisy_draw =
    Pnn.Noise.draw (Rng.create 17) ~epsilon:0.1
      ~theta_shapes:(Pnn.Network.theta_shapes net)
  in
  let noisy = A.value (Pnn.Network.logits net ~noise:noisy_draw x) in
  Alcotest.(check bool) "variation shifts outputs" false (T.equal ~eps:1e-9 clean noisy)

let test_network_loss_positive () =
  let net = make_net ~inputs:4 ~outputs:3 () in
  let x = T.uniform (Rng.create 9) 6 4 ~lo:0.0 ~hi:1.0 in
  let labels = Datasets.Synth.one_hot ~n_classes:3 [| 0; 1; 2; 0; 1; 2 |] in
  let l = Pnn.Network.loss net ~noise:(ones_noise net) ~x ~labels in
  Alcotest.(check bool) "loss positive" true (T.get (A.value l) 0 0 > 0.0)

let test_network_mc_loss_averages () =
  let net = make_net ~inputs:3 ~outputs:2 () in
  let x = T.uniform (Rng.create 9) 4 3 ~lo:0.0 ~hi:1.0 in
  let labels = Datasets.Synth.one_hot ~n_classes:2 [| 0; 1; 0; 1 |] in
  let shapes = Pnn.Network.theta_shapes net in
  let noises = Pnn.Noise.draw_many (Rng.create 3) ~epsilon:0.05 ~theta_shapes:shapes ~n:4 in
  let mc = T.get (A.value (Pnn.Network.mc_loss net ~noises ~x ~labels)) 0 0 in
  let mean_manual =
    List.fold_left
      (fun acc noise -> acc +. T.get (A.value (Pnn.Network.loss net ~noise ~x ~labels)) 0 0)
      0.0 noises
    /. 4.0
  in
  Alcotest.(check (float 1e-9)) "mc = mean of draws" mean_manual mc

let test_network_snapshot_restore () =
  let net = make_net ~inputs:3 ~outputs:2 () in
  let x = T.uniform (Rng.create 9) 4 3 ~lo:0.0 ~hi:1.0 in
  let before = A.value (Pnn.Network.logits net ~noise:(ones_noise net) x) in
  let snap = Pnn.Network.snapshot net in
  (* perturb all thetas *)
  List.iter
    (fun p ->
      let v = A.value p in
      for r = 0 to T.rows v - 1 do
        for c = 0 to T.cols v - 1 do
          T.set v r c (T.get v r c +. 0.3)
        done
      done)
    (Pnn.Network.params_theta net);
  Pnn.Network.restore net snap;
  let after = A.value (Pnn.Network.logits net ~noise:(ones_noise net) x) in
  Alcotest.(check bool) "function restored" true (T.equal ~eps:1e-12 before after)

(* {1 Training and evaluation} *)

let blob_split () =
  let data =
    Datasets.Synth.generate
      {
        Datasets.Synth.name = "blob";
        features = 3;
        classes = 2;
        samples = 160;
        modes_per_class = 1;
        class_sep = 0.3;
        spread = 0.06;
        label_noise = 0.0;
        priors = None;
        seed = 31;
      }
  in
  Datasets.Synth.split (Rng.create 8) data

let test_training_learns_blobs () =
  let split = blob_split () in
  let cfg = { config with C.max_epochs = 250; patience = 250; epsilon = 0.0 } in
  let result =
    Pnn.Training.train_fresh (Rng.create 4) cfg (Lazy.force surrogate) ~n_classes:2 split
  in
  let acc =
    Pnn.Evaluation.nominal_accuracy result.Pnn.Training.network
      ~x:split.Datasets.Synth.x_test ~y:split.Datasets.Synth.y_test
  in
  Alcotest.(check bool) (Printf.sprintf "blob accuracy %.3f > 0.9" acc) true (acc > 0.9)

let test_variation_aware_training_runs () =
  let split = blob_split () in
  let cfg =
    { config with C.max_epochs = 40; patience = 40; epsilon = 0.1; n_mc_train = 3 }
  in
  let result =
    Pnn.Training.train_fresh (Rng.create 4) cfg (Lazy.force surrogate) ~n_classes:2 split
  in
  Alcotest.(check bool) "finite val loss" true (Float.is_finite result.Pnn.Training.val_loss)

let test_non_learnable_keeps_omega_fixed () =
  let split = blob_split () in
  let cfg =
    C.with_learnable { config with C.max_epochs = 30; patience = 30 } false
  in
  let result =
    Pnn.Training.train_fresh (Rng.create 4) cfg (Lazy.force surrogate) ~n_classes:2 split
  in
  List.iter
    (fun layer ->
      let raw = A.value (Pnn.Nonlinear.raw_param layer.Pnn.Layer.act) in
      Alcotest.(check (float 0.0)) "omega untouched" 0.0 (T.sum (T.map Float.abs raw)))
    (Pnn.Network.layers result.Pnn.Training.network)

let test_learnable_moves_omega () =
  let split = blob_split () in
  let cfg = { config with C.max_epochs = 60; patience = 60 } in
  let result =
    Pnn.Training.train_fresh (Rng.create 4) cfg (Lazy.force surrogate) ~n_classes:2 split
  in
  let moved =
    List.exists
      (fun layer ->
        let raw = A.value (Pnn.Nonlinear.raw_param layer.Pnn.Layer.act) in
        T.sum (T.map Float.abs raw) > 1e-6)
      (Pnn.Network.layers result.Pnn.Training.network)
  in
  Alcotest.(check bool) "omega learned" true moved

let test_mc_accuracy_stats () =
  let split = blob_split () in
  let cfg = { config with C.max_epochs = 120; patience = 120 } in
  let result =
    Pnn.Training.train_fresh (Rng.create 4) cfg (Lazy.force surrogate) ~n_classes:2 split
  in
  let eval =
    Pnn.Evaluation.mc_accuracy (Rng.create 5) result.Pnn.Training.network ~epsilon:0.05
      ~n:20 ~x:split.Datasets.Synth.x_test ~y:split.Datasets.Synth.y_test
  in
  Alcotest.(check int) "20 draws" 20 (Array.length eval.Pnn.Evaluation.accuracies);
  Alcotest.(check bool) "mean in [0,1]" true
    (eval.Pnn.Evaluation.mean_accuracy >= 0.0 && eval.Pnn.Evaluation.mean_accuracy <= 1.0);
  Alcotest.(check bool) "std >= 0" true (eval.Pnn.Evaluation.std_accuracy >= 0.0)

let test_mc_accuracy_nominal_single_draw () =
  let net = make_net ~inputs:3 ~outputs:2 () in
  let x = T.uniform (Rng.create 2) 10 3 ~lo:0.0 ~hi:1.0 in
  let y = Array.init 10 (fun i -> i mod 2) in
  let eval = Pnn.Evaluation.mc_accuracy (Rng.create 5) net ~epsilon:0.0 ~n:50 ~x ~y in
  Alcotest.(check int) "single eval at eps=0" 1 (Array.length eval.Pnn.Evaluation.accuracies);
  Alcotest.(check (float 0.0)) "no spread" 0.0 eval.Pnn.Evaluation.std_accuracy

let test_export_design_report () =
  let net = make_net ~inputs:3 ~outputs:2 () in
  let report = Pnn.Export.design_report net in
  List.iter
    (fun needle ->
      let found =
        let nl = String.length needle and hl = String.length report in
        let rec go i = i + nl <= hl && (String.sub report i nl = needle || go (i + 1)) in
        go 0
      in
      if not found then Alcotest.failf "design report missing %S" needle)
    [ "Layer 1"; "Layer 2"; "bias"; "dark"; "activation (ptanh)"; "negative-weight"; "R1=" ]

let test_export_verify_activations () =
  let net = make_net ~inputs:3 ~outputs:2 () in
  let checks = Pnn.Export.verify_activations ~points:15 net in
  Alcotest.(check int) "2 circuits per layer" 4 (List.length checks);
  List.iter
    (fun c ->
      Alcotest.(check bool) "rmse finite" true (Float.is_finite c.Pnn.Export.curve_rmse);
      Alcotest.(check bool) "learned omega feasible" true
        (Surrogate.Design_space.contains c.Pnn.Export.omega))
    checks

let test_mc_accuracy_invalid_n () =
  let net = make_net ~inputs:2 ~outputs:2 () in
  Alcotest.check_raises "n" (Invalid_argument "Evaluation.mc_accuracy: n < 1") (fun () ->
      ignore
        (Pnn.Evaluation.mc_accuracy (Rng.create 1) net ~epsilon:0.1 ~n:0
           ~x:(T.ones 1 2) ~y:[| 0 |]))

(* {1 End-to-end gradient checks}

   Finite differences through the complete printed-layer chain: crossbar
   (relu split, STE projection, div_rowvec), negative-weight activation, and
   the frozen-surrogate ptanh.  Parameter values are kept strictly inside the
   printable region so the STE projection is locally the identity and honest
   finite differences apply. *)

let fd_check ~get ~set ~loss_fn ~analytic_grad ~n tol label =
  let h = 1e-5 in
  for i = 0 to n - 1 do
    let orig = get i in
    set i (orig +. h);
    let fp = loss_fn () in
    set i (orig -. h);
    let fm = loss_fn () in
    set i orig;
    let numeric = (fp -. fm) /. (2.0 *. h) in
    let a = analytic_grad i in
    let scale = Stdlib.max 1.0 (Stdlib.max (Float.abs a) (Float.abs numeric)) in
    if Float.abs (a -. numeric) /. scale > tol then
      Alcotest.failf "%s: grad mismatch at %d: analytic %.8f vs numeric %.8f" label i a
        numeric
  done

let test_layer_theta_gradient_end_to_end () =
  let layer =
    Pnn.Layer.create (Rng.create 5) config (Lazy.force surrogate) ~inputs:3 ~outputs:2
  in
  (* place θ well inside the printable region, mixed signs *)
  let v = A.value layer.Pnn.Layer.theta in
  let rng = Rng.create 11 in
  for r = 0 to T.rows v - 1 do
    for c = 0 to T.cols v - 1 do
      let mag = Rng.uniform rng ~lo:0.1 ~hi:0.6 in
      T.set v r c (if Rng.float rng < 0.5 then -.mag else mag)
    done
  done;
  let x = T.uniform (Rng.create 7) 4 3 ~lo:0.1 ~hi:0.9 in
  let noise = List.hd (Pnn.Noise.none ~theta_shapes:[ Pnn.Layer.theta_shape layer ]) in
  let loss_graph () =
    A.sum (Pnn.Layer.forward config layer ~noise (A.const x))
  in
  let loss_fn () = T.get (A.value (loss_graph ())) 0 0 in
  let grads = ref (T.zeros 1 1) in
  A.backward (loss_graph ());
  grads := T.copy (A.grad layer.Pnn.Layer.theta);
  let cols = T.cols v in
  fd_check
    ~get:(fun i -> T.get v (i / cols) (i mod cols))
    ~set:(fun i value -> T.set v (i / cols) (i mod cols) value)
    ~loss_fn
    ~analytic_grad:(fun i -> T.get !grads (i / cols) (i mod cols))
    ~n:(T.numel v) 2e-3 "theta end-to-end"

let test_layer_omega_gradient_end_to_end () =
  let layer =
    Pnn.Layer.create (Rng.create 5) config (Lazy.force surrogate) ~inputs:3 ~outputs:2
  in
  let x = T.uniform (Rng.create 7) 4 3 ~lo:0.1 ~hi:0.9 in
  let noise = List.hd (Pnn.Noise.none ~theta_shapes:[ Pnn.Layer.theta_shape layer ]) in
  let raw = A.value (Pnn.Nonlinear.raw_param layer.Pnn.Layer.act) in
  (* mildly off-centre raw 𝔴 keeps sigmoid/clip regions smooth *)
  for c = 0 to T.cols raw - 1 do
    T.set raw 0 c (0.3 *. float_of_int (c - 3))
  done;
  let loss_graph () = A.sum (Pnn.Layer.forward config layer ~noise (A.const x)) in
  let loss_fn () = T.get (A.value (loss_graph ())) 0 0 in
  A.backward (loss_graph ());
  let grads = T.copy (A.grad (Pnn.Nonlinear.raw_param layer.Pnn.Layer.act)) in
  fd_check
    ~get:(fun i -> T.get raw 0 i)
    ~set:(fun i value -> T.set raw 0 i value)
    ~loss_fn
    ~analytic_grad:(fun i -> T.get grads 0 i)
    ~n:(T.cols raw) 2e-3 "omega end-to-end"

(* {1 Serialization} *)

let test_serialize_roundtrip () =
  let net = make_net ~inputs:4 ~outputs:3 () in
  let x = T.uniform (Rng.create 9) 5 4 ~lo:0.0 ~hi:1.0 in
  let before = A.value (Pnn.Network.logits net ~noise:(ones_noise net) x) in
  let lines = Pnn.Serialize.to_lines net in
  let net', rest = Pnn.Serialize.of_lines (Lazy.force surrogate) lines in
  Alcotest.(check int) "consumed" 0 (List.length rest);
  let after = A.value (Pnn.Network.logits net' ~noise:(ones_noise net') x) in
  Alcotest.(check bool) "same function" true (T.equal ~eps:1e-12 before after)

let test_serialize_file_roundtrip () =
  let net = make_net ~inputs:3 ~outputs:2 () in
  let path = Filename.temp_file "pnn" ".txt" in
  Pnn.Serialize.save_file net path;
  let net' = Pnn.Serialize.load_file (Lazy.force surrogate) path in
  Sys.remove path;
  let x = T.uniform (Rng.create 2) 4 3 ~lo:0.0 ~hi:1.0 in
  Alcotest.(check bool) "file roundtrip" true
    (T.equal ~eps:1e-12
       (A.value (Pnn.Network.logits net ~noise:(ones_noise net) x))
       (A.value (Pnn.Network.logits net' ~noise:(ones_noise net') x)))

let test_serialize_bad_input () =
  match Pnn.Serialize.of_lines (Lazy.force surrogate) [ "garbage" ] with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected failure"

(* {1 Power} *)

let test_power_estimate_sane () =
  let net = make_net ~inputs:4 ~outputs:3 () in
  let x = T.uniform (Rng.create 3) 20 4 ~lo:0.0 ~hi:1.0 in
  let r = Pnn.Power.estimate net ~x_sample:x in
  Alcotest.(check bool) "crossbar power positive" true (r.Pnn.Power.crossbar_power_w > 0.0);
  Alcotest.(check bool) "nonlinear power positive" true (r.Pnn.Power.nonlinear_power_w > 0.0);
  Alcotest.(check bool) "total consistent" true
    (Float.abs
       (r.Pnn.Power.total_power_w
       -. (r.Pnn.Power.crossbar_power_w +. r.Pnn.Power.nonlinear_power_w))
    < 1e-12);
  Alcotest.(check int) "activation circuits = neurons" 6 r.Pnn.Power.activation_circuits;
  Alcotest.(check bool) "area positive" true (r.Pnn.Power.area_mm2 > 0.0);
  (* power scales with the conductance unit *)
  let r2 = Pnn.Power.estimate ~g_unit:2e-4 net ~x_sample:x in
  Alcotest.(check (float 1e-12)) "crossbar power scales linearly"
    (2.0 *. r.Pnn.Power.crossbar_power_w)
    r2.Pnn.Power.crossbar_power_w

let test_power_empty_sample () =
  let net = make_net ~inputs:2 ~outputs:2 () in
  Alcotest.check_raises "empty" (Invalid_argument "Power.estimate: empty sample")
    (fun () -> ignore (Pnn.Power.estimate net ~x_sample:(T.zeros 0 2)))

(* {1 Aging} *)

let test_aging_draw_shapes_and_range () =
  let model = Pnn.Aging.default_model in
  let noise =
    Pnn.Aging.draw (Rng.create 1) model ~t_frac:1.0 ~theta_shapes:[ (5, 3) ]
  in
  List.iter
    (fun ln ->
      Array.iter
        (fun v ->
          if v > 1.0 || v < 1.0 -. model.Pnn.Aging.kappa_max -. 1e-9 then
            Alcotest.failf "theta multiplier out of range: %f" v)
        (T.to_array ln.Pnn.Noise.theta);
      (* omegas grow; geometry (last two entries) untouched *)
      let o = T.to_array ln.Pnn.Noise.act_omega in
      Array.iteri
        (fun j v ->
          if j >= 5 then Alcotest.(check (float 0.0)) "geometry does not age" 1.0 v
          else if v < 1.0 || v > 1.0 +. model.Pnn.Aging.kappa_max +. 1e-9 then
            Alcotest.failf "omega multiplier out of range: %f" v)
        o)
    noise

let test_aging_fresh_device_unaged () =
  let noise =
    Pnn.Aging.draw (Rng.create 1) Pnn.Aging.default_model ~t_frac:0.0
      ~theta_shapes:[ (3, 2) ]
  in
  List.iter
    (fun ln ->
      Alcotest.(check (float 1e-12)) "no drift at t=0" 1.0 (T.mean ln.Pnn.Noise.theta))
    noise

let test_aging_invalid_t () =
  Alcotest.check_raises "t_frac" (Invalid_argument "Aging.draw: t_frac outside [0,1]")
    (fun () ->
      ignore
        (Pnn.Aging.draw (Rng.create 1) Pnn.Aging.default_model ~t_frac:1.5
           ~theta_shapes:[ (1, 1) ]))

let test_aging_aware_training_runs () =
  let split = blob_split () in
  let cfg = { config with C.max_epochs = 40; patience = 40; n_mc_train = 3 } in
  let tdata = Pnn.Training.of_split ~n_classes:2 split in
  let net =
    Pnn.Network.create (Rng.create 4) cfg (Lazy.force surrogate) ~inputs:3 ~outputs:2
  in
  let result =
    Pnn.Aging.fit_aging_aware (Rng.create 4) Pnn.Aging.default_model net tdata
  in
  Alcotest.(check bool) "finite val loss" true (Float.is_finite result.Pnn.Training.val_loss)

let test_aging_curve_shape () =
  let net = make_net ~inputs:3 ~outputs:2 () in
  let x = T.uniform (Rng.create 2) 12 3 ~lo:0.0 ~hi:1.0 in
  let y = Array.init 12 (fun i -> i mod 2) in
  let curve =
    Pnn.Aging.accuracy_over_lifetime (Rng.create 5) Pnn.Aging.default_model net
      ~t_fracs:[ 0.0; 1.0 ] ~n:10 ~x ~y
  in
  Alcotest.(check int) "two points" 2 (List.length curve);
  List.iter
    (fun (_, e) ->
      Alcotest.(check bool) "accuracy in [0,1]" true
        (e.Pnn.Evaluation.mean_accuracy >= 0.0 && e.Pnn.Evaluation.mean_accuracy <= 1.0))
    curve

(* {1 Properties} *)

let qcheck_forward_bounded =
  QCheck.Test.make ~name:"network outputs stay within activation rails" ~count:30
    QCheck.(pair (int_range 0 1000) (int_range 1 6))
    (fun (seed, batch) ->
      let net = make_net ~seed ~inputs:3 ~outputs:2 () in
      let x = T.uniform (Rng.create seed) batch 3 ~lo:0.0 ~hi:1.0 in
      let noise =
        Pnn.Noise.draw (Rng.create (seed + 1)) ~epsilon:0.1
          ~theta_shapes:(Pnn.Network.theta_shapes net)
      in
      let out = A.value (Pnn.Network.forward net ~noise (A.const x)) in
      T.min_value out > -1.5 && T.max_value out < 1.5)

let qcheck_denominator_positive =
  QCheck.Test.make ~name:"crossbar normalization never divides by zero" ~count:50
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let layer =
        Pnn.Layer.create (Rng.create seed) config (Lazy.force surrogate) ~inputs:4
          ~outputs:3
      in
      let noise =
        List.hd (Pnn.Noise.none ~theta_shapes:[ Pnn.Layer.theta_shape layer ])
      in
      let x = T.uniform (Rng.create (seed + 5)) 3 4 ~lo:0.0 ~hi:1.0 in
      let vz = A.value (Pnn.Layer.preactivation config layer ~noise (A.const x)) in
      Array.for_all Float.is_finite (T.to_array vz))

let () =
  Alcotest.run "pnn"
    [
      ( "config+noise",
        [
          Alcotest.test_case "config helpers" `Quick test_config_helpers;
          Alcotest.test_case "noise none" `Quick test_noise_none_is_ones;
          Alcotest.test_case "noise bounds" `Quick test_noise_draw_bounds;
          Alcotest.test_case "noise eps=0" `Quick test_noise_zero_epsilon_is_none;
          Alcotest.test_case "noise invalid" `Quick test_noise_invalid_epsilon;
        ] );
      ( "nonlinear",
        [
          Alcotest.test_case "printable feasible" `Quick test_nonlinear_printable_feasible;
          Alcotest.test_case "eta responds to w" `Quick test_nonlinear_eta_changes_with_w;
          Alcotest.test_case "inv negates" `Quick test_nonlinear_apply_inv_negates;
          Alcotest.test_case "gradient to w" `Quick test_nonlinear_gradient_to_w;
          Alcotest.test_case "snapshot" `Quick test_nonlinear_snapshot_restore;
        ] );
      ( "layer",
        [
          Alcotest.test_case "shapes" `Quick test_layer_shapes;
          Alcotest.test_case "forward" `Quick test_layer_forward_shape_and_range;
          Alcotest.test_case "width check" `Quick test_layer_input_width_check;
          Alcotest.test_case "printable projection" `Quick test_printed_theta_in_printable_set;
          Alcotest.test_case "gradients flow" `Quick test_layer_gradients_flow;
          Alcotest.test_case "theta gradient (finite diff)" `Quick
            test_layer_theta_gradient_end_to_end;
          Alcotest.test_case "omega gradient (finite diff)" `Quick
            test_layer_omega_gradient_end_to_end;
        ] );
      ( "network",
        [
          Alcotest.test_case "topology" `Quick test_network_topology;
          Alcotest.test_case "param groups" `Quick test_network_param_groups;
          Alcotest.test_case "noise changes output" `Quick test_network_noise_changes_output;
          Alcotest.test_case "loss positive" `Quick test_network_loss_positive;
          Alcotest.test_case "mc loss averages" `Quick test_network_mc_loss_averages;
          Alcotest.test_case "snapshot/restore" `Quick test_network_snapshot_restore;
        ] );
      ( "training+eval",
        [
          Alcotest.test_case "learns blobs" `Quick test_training_learns_blobs;
          Alcotest.test_case "variation-aware runs" `Quick test_variation_aware_training_runs;
          Alcotest.test_case "fixed omega stays" `Quick test_non_learnable_keeps_omega_fixed;
          Alcotest.test_case "learnable moves omega" `Quick test_learnable_moves_omega;
          Alcotest.test_case "mc accuracy stats" `Quick test_mc_accuracy_stats;
          Alcotest.test_case "nominal single draw" `Quick test_mc_accuracy_nominal_single_draw;
          Alcotest.test_case "invalid n" `Quick test_mc_accuracy_invalid_n;
          Alcotest.test_case "export design report" `Quick test_export_design_report;
          Alcotest.test_case "export verify circuits" `Quick test_export_verify_activations;
        ] );
      ( "serialize",
        [
          Alcotest.test_case "lines roundtrip" `Quick test_serialize_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_serialize_file_roundtrip;
          Alcotest.test_case "bad input" `Quick test_serialize_bad_input;
        ] );
      ( "power",
        [
          Alcotest.test_case "estimate sane" `Quick test_power_estimate_sane;
          Alcotest.test_case "empty sample" `Quick test_power_empty_sample;
        ] );
      ( "aging",
        [
          Alcotest.test_case "draw ranges" `Quick test_aging_draw_shapes_and_range;
          Alcotest.test_case "fresh device" `Quick test_aging_fresh_device_unaged;
          Alcotest.test_case "invalid t" `Quick test_aging_invalid_t;
          Alcotest.test_case "aging-aware training" `Quick test_aging_aware_training_runs;
          Alcotest.test_case "aging curve" `Quick test_aging_curve_shape;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_forward_bounded;
          QCheck_alcotest.to_alcotest qcheck_denominator_positive;
        ] );
    ]
