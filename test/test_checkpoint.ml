(* Deterministic checkpoint/resume for Training.fit.

   The contract under test: a run interrupted mid-training and resumed from
   its checkpoint finishes bit-identically — loss histories, final
   parameters, best-validation snapshot, everything — to a run that was never
   interrupted.  Training fans out over the env-driven shared pool, so the
   dune [determinism] alias re-runs this binary under REPRO_JOBS=1 and 4. *)

module A = Autodiff
module T = Tensor
module C = Pnn.Config

let surrogate =
  lazy
    (let dataset = Surrogate.Pipeline.generate_dataset ~n:250 () in
     let model, _ =
       Surrogate.Pipeline.train_surrogate ~arch:[ 10; 8; 6; 4 ] ~max_epochs:300
         (Rng.create 42) dataset
     in
     model)

let blob_split () =
  let data =
    Datasets.Synth.generate
      {
        Datasets.Synth.name = "blob";
        features = 3;
        classes = 2;
        samples = 160;
        modes_per_class = 1;
        class_sep = 0.3;
        spread = 0.06;
        label_noise = 0.0;
        priors = None;
        seed = 31;
      }
  in
  Datasets.Synth.split (Rng.create 8) data

(* variation-aware so the in-loop RNG position is load-bearing *)
let config =
  {
    C.default with
    C.max_epochs = 20;
    patience = 40;
    epsilon = 0.1;
    n_mc_train = 2;
    val_every = 2;
  }

let train ?checkpoint ?(config = config) () =
  Pnn.Training.train_fresh ?checkpoint (Rng.create 4) config
    (Lazy.force surrogate) ~n_classes:2 (blob_split ())

let bits = Int64.bits_of_float

let fingerprint (res : Pnn.Training.result) =
  let params =
    Pnn.Network.params_theta res.Pnn.Training.network
    @ Pnn.Network.params_omega res.Pnn.Training.network
  in
  ( Array.map bits res.Pnn.Training.history.Nn.Train.train_losses,
    Array.map bits res.Pnn.Training.history.Nn.Train.val_losses,
    List.concat_map
      (fun p -> Array.to_list (Array.map bits (T.to_array (A.value p))))
      params,
    bits res.Pnn.Training.val_loss,
    res.Pnn.Training.history.Nn.Train.best_epoch,
    res.Pnn.Training.history.Nn.Train.stopped_early )

let check_same msg a b =
  let ta, va, pa, la, ba, sa = a and tb, vb, pb, lb, bb, sb = b in
  Alcotest.(check (array int64)) (msg ^ ": train losses") ta tb;
  Alcotest.(check (array int64)) (msg ^ ": val losses") va vb;
  Alcotest.(check (list int64)) (msg ^ ": final params") pa pb;
  Alcotest.(check int64) (msg ^ ": best val loss") la lb;
  Alcotest.(check int) (msg ^ ": best epoch") ba bb;
  Alcotest.(check bool) (msg ^ ": stopped_early") sa sb

let ckpt_path () =
  let p = Filename.temp_file "pnnckpt" ".pce" in
  Sys.remove p;
  p

let baseline = lazy (fingerprint (train ()))

(* {1 Interrupt then resume: bit-identical} *)

let test_interrupt_resume_bit_identical () =
  let path = ckpt_path () in
  let interrupted =
    {
      Pnn.Training.ckpt_path = path;
      every = 4;
      resume = false;
      interrupt_after = Some 11;
    }
  in
  (match train ~checkpoint:interrupted () with
  | exception Pnn.Training.Interrupted -> ()
  | _ -> Alcotest.fail "interrupt_after must raise");
  Alcotest.(check bool) "checkpoint written before the crash" true
    (Sys.file_exists path);
  let resumed =
    train
      ~checkpoint:
        { Pnn.Training.ckpt_path = path; every = 4; resume = true;
          interrupt_after = None }
      ()
  in
  check_same "resumed vs uninterrupted" (Lazy.force baseline)
    (fingerprint resumed);
  Sys.remove path

let test_double_interrupt_resume () =
  (* crash, resume, crash again later, resume again: still bit-identical *)
  let path = ckpt_path () in
  let ck ~resume ~stop =
    { Pnn.Training.ckpt_path = path; every = 2; resume; interrupt_after = stop }
  in
  (match train ~checkpoint:(ck ~resume:false ~stop:(Some 5)) () with
  | exception Pnn.Training.Interrupted -> ()
  | _ -> Alcotest.fail "first interrupt");
  (match train ~checkpoint:(ck ~resume:true ~stop:(Some 13)) () with
  | exception Pnn.Training.Interrupted -> ()
  | _ -> Alcotest.fail "second interrupt");
  let resumed = train ~checkpoint:(ck ~resume:true ~stop:None) () in
  check_same "twice-interrupted vs uninterrupted" (Lazy.force baseline)
    (fingerprint resumed);
  Sys.remove path

(* {1 Checkpointing an uninterrupted run is invisible} *)

let test_checkpointing_is_invisible () =
  let path = ckpt_path () in
  let res =
    train
      ~checkpoint:
        { Pnn.Training.ckpt_path = path; every = 3; resume = false;
          interrupt_after = None }
      ()
  in
  check_same "with vs without checkpointing" (Lazy.force baseline)
    (fingerprint res);
  if Sys.file_exists path then Sys.remove path

(* {1 Bad checkpoints degrade to a fresh start} *)

let test_missing_checkpoint_fresh_start () =
  let res =
    train
      ~checkpoint:
        { Pnn.Training.ckpt_path = ckpt_path (); every = 4; resume = true;
          interrupt_after = None }
      ()
  in
  check_same "resume with no file" (Lazy.force baseline) (fingerprint res)

let test_corrupt_checkpoint_fresh_start () =
  let path = ckpt_path () in
  let oc = open_out_bin path in
  output_string oc "not a checkpoint\n";
  close_out oc;
  let res =
    train
      ~checkpoint:
        { Pnn.Training.ckpt_path = path; every = 4; resume = true;
          interrupt_after = None }
      ()
  in
  check_same "resume from garbage" (Lazy.force baseline) (fingerprint res);
  Sys.remove path

let test_mismatched_config_fresh_start () =
  (* a checkpoint from a different training config must be ignored *)
  let path = ckpt_path () in
  let other = { config with C.max_epochs = 9; epsilon = 0.05 } in
  (match
     train ~config:other
       ~checkpoint:
         { Pnn.Training.ckpt_path = path; every = 2; resume = false;
           interrupt_after = Some 5 }
       ()
   with
  | exception Pnn.Training.Interrupted -> ()
  | _ -> Alcotest.fail "interrupt under other config");
  Alcotest.(check bool) "stale checkpoint exists" true (Sys.file_exists path);
  let res =
    train
      ~checkpoint:
        { Pnn.Training.ckpt_path = path; every = 4; resume = true;
          interrupt_after = None }
      ()
  in
  check_same "stale checkpoint ignored" (Lazy.force baseline) (fingerprint res);
  Sys.remove path

let () =
  Alcotest.run "checkpoint"
    [
      ( "resume",
        [
          Alcotest.test_case "interrupt -> resume bit-identical" `Quick
            test_interrupt_resume_bit_identical;
          Alcotest.test_case "two interrupts" `Quick test_double_interrupt_resume;
          Alcotest.test_case "checkpointing is invisible" `Quick
            test_checkpointing_is_invisible;
        ] );
      ( "fallback",
        [
          Alcotest.test_case "missing file" `Quick
            test_missing_checkpoint_fresh_start;
          Alcotest.test_case "corrupt file" `Quick
            test_corrupt_checkpoint_fresh_start;
          Alcotest.test_case "mismatched config" `Quick
            test_mismatched_config_fresh_start;
        ] );
    ]
