(* Multi-process experiment orchestration tests.

   Three layers under test:
   - the directory work queue's claim/lease/steal protocol, driven with a
     fake clock (the queue never reads a real one);
   - the plan expansion: every orchestrated unit must land on exactly the
     cache entry the single-process table runners read back;
   - the coordinator end-to-end: quick Table II byte-identical at worker
     counts 1 / 2 / 4, including a crash-injected worker (steal + checkpoint
     resume) and a real SIGKILL mid-run.

   Fork discipline: OCaml 5 permanently refuses Unix.fork once a process has
   ever spawned a domain, so the very first thing this binary does is pin
   the shared pool to the sequential path.  The one test that opens the
   latch on purpose (spawning a domain to prove the coordinator then
   refuses) runs last. *)

let fork_safe = Parallel.require_sequential ()

module O = Orchestration
module Q = Orchestration.Work_queue

let tmp_root () =
  let path = Filename.temp_file "pnn_orch_test" "" in
  Sys.remove path;
  Cache.mkdir_p path;
  path

(* {1 Queue protocol (fake clock)} *)

let test_queue_claim_lease_steal () =
  let root = Filename.concat (tmp_root ()) "q" in
  let q = Q.init ~root ~units:[ ("bbb", "second"); ("aaa", "first") ] in
  (* re-init is idempotent and never clobbers *)
  let _ = Q.init ~root ~units:[ ("aaa", "clobber attempt") ] in
  Alcotest.(check (list string)) "sorted keys" [ "aaa"; "bbb" ] (Q.unit_keys q);
  Alcotest.(check (list string)) "all pending" [ "aaa"; "bbb" ] (Q.pending q);
  Alcotest.(check bool) "claim" true
    (Q.claim q ~owner:"w1" ~now:0.0 ~lease:10.0 "aaa");
  Alcotest.(check bool) "claim is exclusive" false
    (Q.claim q ~owner:"w2" ~now:1.0 ~lease:10.0 "aaa");
  (match Q.read_claim q "aaa" with
  | Some c ->
      Alcotest.(check string) "owner" "w1" c.Q.owner;
      Alcotest.(check (float 1e-9)) "expiry" 10.0 c.Q.expires
  | None -> Alcotest.fail "claim must be readable");
  Alcotest.(check bool) "renew by owner" true
    (Q.renew q ~owner:"w1" ~now:5.0 ~lease:10.0 "aaa");
  Alcotest.(check bool) "renew by other" false
    (Q.renew q ~owner:"w2" ~now:5.0 ~lease:10.0 "aaa");
  Alcotest.(check bool) "steal before expiry" false
    (Q.steal_expired q ~now:14.9 "aaa");
  Alcotest.(check bool) "steal after expiry" true
    (Q.steal_expired q ~now:15.1 "aaa");
  Alcotest.(check bool) "only one stealer wins" false
    (Q.steal_expired q ~now:15.1 "aaa");
  Alcotest.(check bool) "stolen unit reclaimable" true
    (Q.claim q ~owner:"w2" ~now:16.0 ~lease:10.0 "aaa");
  Q.mark_done q "aaa";
  Q.mark_done q "aaa";
  Q.release q ~owner:"w2" "aaa";
  Alcotest.(check bool) "done" true (Q.is_done q "aaa");
  Alcotest.(check (list string)) "pending excludes done" [ "bbb" ] (Q.pending q);
  Alcotest.(check bool) "done unit unclaimable" false
    (Q.claim q ~owner:"w1" ~now:20.0 ~lease:10.0 "aaa");
  Alcotest.(check bool) "unknown unit unclaimable" false
    (Q.claim q ~owner:"w1" ~now:20.0 ~lease:10.0 "zzz")

let test_queue_acquire_order_and_corruption () =
  let root = Filename.concat (tmp_root ()) "q" in
  let q = Q.init ~root ~units:[ ("a", "-"); ("b", "-"); ("c", "-") ] in
  Alcotest.(check bool) "w1 takes a" true
    (Q.claim q ~owner:"w1" ~now:0.0 ~lease:100.0 "a");
  Alcotest.(check (option string)) "acquire skips live claim"
    (Some "b")
    (Q.acquire q ~owner:"w2" ~now:1.0 ~lease:100.0);
  Alcotest.(check (option string)) "acquire takes next" (Some "c")
    (Q.acquire q ~owner:"w2" ~now:1.0 ~lease:100.0);
  Alcotest.(check (option string)) "all claimed -> none" None
    (Q.acquire q ~owner:"w3" ~now:1.0 ~lease:100.0);
  Alcotest.(check (option string)) "expired lease stolen via acquire"
    (Some "a")
    (Q.acquire q ~owner:"w3" ~now:200.0 ~lease:100.0);
  (* a torn/corrupt claim file must not wedge its unit *)
  Q.mark_done q "a";
  Q.mark_done q "b";
  let corrupt = Filename.concat (Filename.concat root "claims") "c.claim" in
  Out_channel.with_open_bin corrupt (fun oc ->
      Out_channel.output_string oc "garbage");
  Alcotest.(check bool) "corrupt claim reads as none" true
    (Q.read_claim q "c" = None);
  Alcotest.(check (option string)) "corrupt claim stolen and reclaimed"
    (Some "c")
    (Q.acquire q ~owner:"w4" ~now:1.0 ~lease:100.0)

(* {1 Fixtures (mirroring test_parallel's tiny scale)} *)

let surrogate =
  lazy
    (let dataset = Surrogate.Pipeline.generate_dataset ~n:250 () in
     fst
       (Surrogate.Pipeline.train_surrogate ~arch:[ 10; 8; 6; 4 ] ~max_epochs:150
          (Rng.create 42) dataset))

let blob_data name seed =
  Datasets.Synth.generate
    {
      Datasets.Synth.name;
      features = 3;
      classes = 2;
      samples = 70;
      modes_per_class = 1;
      class_sep = 0.32;
      spread = 0.06;
      label_noise = 0.0;
      priors = None;
      seed;
    }

let tiny_scale =
  {
    Experiments.Setup.seeds = [ 1; 2 ];
    test_epsilons = [ 0.05 ];
    n_mc_test = 4;
    config =
      {
        Pnn.Config.default with
        Pnn.Config.max_epochs = 20;
        patience = 20;
        n_mc_train = 2;
        n_mc_val = 2;
      };
    init = `Centered;
    surrogate_samples = 250;
    surrogate_epochs = 150;
  }

let make_ctx ?faults ~root ~tag () =
  let cache = Cache.create ~dir:(Filename.concat root (tag ^ ".cache")) in
  O.Plan.create
    ~datasets:[ blob_data "orch-blobs" 19 ]
    ?faults ~checkpoint_every:5 ~cache tiny_scale (Lazy.force surrogate)

let orchestrated ?chaos ~root ~tag ~workers ~lease () =
  let ctx = make_ctx ~root ~tag () in
  let queue_root = Filename.concat root (tag ^ ".queue") in
  let report =
    match chaos with
    | None -> O.Coordinator.run ~workers ~lease ~queue_root ctx
    | Some c -> O.Coordinator.run ~workers ~lease ~chaos:c ~queue_root ctx
  in
  (ctx, report, Experiments.Table2.render (O.Coordinator.table2 ctx))

(* {1 Plan expansion: orchestrated units are the table runners' cache keys} *)

let test_plan_units_match_cache_sites () =
  let root = tmp_root () in
  let ctx = make_ctx ~faults:("orch-blobs", 0.10) ~root ~tag:"plan" () in
  let units = O.Plan.units ctx in
  (* matrix size: 4 arms x 1 eps x 2 seeds = 8 t2 cells, plus (1 nominal +
     4 families) x 2 seeds = 10 fault cells *)
  Alcotest.(check int) "unit count" 18 (List.length units);
  let keys = List.map fst units in
  Alcotest.(check int) "keys distinct"
    (List.length keys)
    (List.length (List.sort_uniq String.compare keys));
  (* executing a unit must publish exactly the entry the runners read *)
  let kind_of = function
    | O.Spec.T2_cell _ -> "t2cell"
    | O.Spec.Fault_cell _ -> "faultcell"
  in
  let check_one (key, spec) =
    Alcotest.(check bool)
      ("cold miss " ^ O.Spec.describe spec)
      true
      (Cache.find ctx.O.Plan.cache ~kind:(kind_of spec) ~key = None);
    O.Plan.execute ctx spec;
    Alcotest.(check bool)
      ("published " ^ O.Spec.describe spec)
      true
      (Cache.find ctx.O.Plan.cache ~kind:(kind_of spec) ~key <> None)
  in
  (* one of each kind keeps the test fast; the end-to-end suites cover all *)
  check_one (List.hd units);
  check_one (List.nth units (List.length units - 1))

(* {1 Crash injection: checkpoint survives, resume is exact} *)

let test_interrupted_unit_resumes_from_checkpoint () =
  let root = tmp_root () in
  let ctx = make_ctx ~root ~tag:"resume" () in
  let key, spec = List.hd (O.Plan.units ctx) in
  (match O.Plan.execute ~interrupt_after:8 ctx spec with
  | exception Pnn.Training.Interrupted -> ()
  | () -> Alcotest.fail "interrupt_after must raise");
  (* the epoch-5 checkpoint must be on disk inside the cache tree *)
  let ckpt =
    match Cache.member_path ctx.O.Plan.cache ~kind:"ckpt" ~key with
    | Some p -> p
    | None -> Alcotest.fail "cache must map a checkpoint path"
  in
  Alcotest.(check bool) "checkpoint written before crash" true
    (Sys.file_exists ckpt);
  (* recovery resumes and publishes a result identical to a never-crashed
     single-process run of the same cell *)
  O.Plan.execute ctx spec;
  let recovered = Cache.find ctx.O.Plan.cache ~kind:"t2cell" ~key in
  Alcotest.(check bool) "recovered cell published" true (recovered <> None);
  Alcotest.(check bool) "checkpoint cleaned after publish" false
    (Sys.file_exists ckpt);
  let clean_ctx = make_ctx ~root ~tag:"resume-clean" () in
  O.Plan.execute clean_ctx spec;
  let clean = Cache.find clean_ctx.O.Plan.cache ~kind:"t2cell" ~key in
  Alcotest.(check bool) "resumed bit-identical to uninterrupted" true
    (recovered = clean)

(* {1 End-to-end determinism: workers 1 / 2 / 4} *)

let test_table2_byte_identical_1_2_4 () =
  if not fork_safe then Alcotest.fail "fixture spawned domains before fork";
  let root = tmp_root () in
  let _, _, t1 = orchestrated ~root ~tag:"w1" ~workers:1 ~lease:30.0 () in
  let _, r2, t2 = orchestrated ~root ~tag:"w2" ~workers:2 ~lease:30.0 () in
  let _, r4, t4 = orchestrated ~root ~tag:"w4" ~workers:4 ~lease:30.0 () in
  Alcotest.(check int) "w2 saw all units" 8 r2.O.Coordinator.units;
  Alcotest.(check int) "w4 saw all units" 8 r4.O.Coordinator.units;
  Alcotest.(check string) "2 workers byte-identical" t1 t2;
  Alcotest.(check string) "4 workers byte-identical" t1 t4

let test_killed_worker_steal_and_resume () =
  let root = tmp_root () in
  let _, _, baseline = orchestrated ~root ~tag:"kb" ~workers:1 ~lease:30.0 () in
  (* worker 0 dies mid-unit (Interrupted after epoch 8, past the epoch-5
     checkpoint); its claim must expire, be stolen, and the cell resume *)
  let chaos = function
    | 0 -> Some { O.Worker.interrupt_after = Some 8 }
    | _ -> None
  in
  let _, report, table =
    orchestrated ~chaos ~root ~tag:"kc" ~workers:2 ~lease:0.5 ()
  in
  Alcotest.(check bool) "crashed worker was respawned" true
    (report.O.Coordinator.respawns >= 1);
  Alcotest.(check string) "post-crash table byte-identical" baseline table

let test_sigkill_recovery () =
  let root = tmp_root () in
  let _, _, baseline = orchestrated ~root ~tag:"sb" ~workers:1 ~lease:30.0 () in
  let ctx = make_ctx ~root ~tag:"sk" () in
  let units = O.Plan.units ctx in
  let queue_root = Filename.concat root "sk.queue" in
  let q =
    Q.init ~root:queue_root
      ~units:(List.map (fun (k, s) -> (k, O.Spec.describe s)) units)
  in
  flush stdout;
  flush stderr;
  (* pnnlint:allow R7 deliberate crash-test fork: this test process has
     spawned no domains when it forks, and the child only exercises the
     worker lease path before _exit *)
  (match Unix.fork () with
  | 0 ->
      (try ignore (O.Worker.run q ctx ~units ~owner:"victim" ~lease:0.5 ())
       with _ -> ());
      Unix._exit 0
  | pid ->
      (* kill -9 at an arbitrary point: whatever state the victim reached
         (mid-unit, between units, already finished), recovery must converge
         on the identical table *)
      Unix.sleepf 0.1;
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] pid));
  let report = O.Coordinator.run ~workers:1 ~lease:0.5 ~queue_root ctx in
  Alcotest.(check int) "queue drained" 8 report.O.Coordinator.units;
  Alcotest.(check (list string)) "nothing pending" []
    (Q.pending (Q.load ~root:queue_root));
  let table = Experiments.Table2.render (O.Coordinator.table2 ctx) in
  Alcotest.(check string) "post-SIGKILL table byte-identical" baseline table

(* {1 Fork-safety latch (must run last: it spawns a domain)} *)

let test_fork_latch_refuses_after_domains () =
  ignore (Domain.join (Domain.spawn (fun () -> 1 + 1)));
  let root = tmp_root () in
  let ctx = make_ctx ~root ~tag:"latch" () in
  match
    O.Coordinator.run ~workers:2 ~queue_root:(Filename.concat root "latch.q")
      ctx
  with
  | exception O.Coordinator.Workers_failed _ -> ()
  | _ -> Alcotest.fail "coordinator must refuse to fork after Domain.spawn"

let () =
  Alcotest.run "orchestrate"
    [
      ( "queue",
        [
          Alcotest.test_case "claim/lease/steal protocol" `Quick
            test_queue_claim_lease_steal;
          Alcotest.test_case "acquire order and corrupt claims" `Quick
            test_queue_acquire_order_and_corruption;
        ] );
      ( "plan",
        [
          Alcotest.test_case "units match the runners' cache keys" `Quick
            test_plan_units_match_cache_sites;
          Alcotest.test_case "interrupted unit resumes from checkpoint" `Quick
            test_interrupted_unit_resumes_from_checkpoint;
        ] );
      ( "coordinator",
        [
          Alcotest.test_case "Table II byte-identical at 1/2/4 workers" `Quick
            test_table2_byte_identical_1_2_4;
          Alcotest.test_case "killed worker: steal + resume" `Quick
            test_killed_worker_steal_and_resume;
          Alcotest.test_case "SIGKILL mid-run recovery" `Quick
            test_sigkill_recovery;
          Alcotest.test_case "fork latch refuses after domains" `Quick
            test_fork_latch_refuses_after_domains;
        ] );
    ]
