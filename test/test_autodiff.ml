(* Gradient checking for the reverse-mode autodiff engine.

   Strategy: for a scalar-valued graph f(p) built from a parameter tensor p,
   compare Autodiff gradients with central finite differences. *)

module A = Autodiff
module T = Tensor

(* Evaluate the graph builder at the parameter's current value and return
   (value, analytic gradient). *)
let grad_of build p =
  let root = build p in
  A.backward root;
  (T.get (A.value root) 0 0, T.copy (A.grad p))

let finite_diff build p =
  let v = A.value p in
  let rows = T.rows v and cols = T.cols v in
  let g = T.zeros rows cols in
  let h = 1e-5 in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let orig = T.get v r c in
      T.set v r c (orig +. h);
      let fp = T.get (A.value (build p)) 0 0 in
      T.set v r c (orig -. h);
      let fm = T.get (A.value (build p)) 0 0 in
      T.set v r c orig;
      T.set g r c ((fp -. fm) /. (2.0 *. h))
    done
  done;
  g

let check_grad ?(tol = 1e-4) name build init =
  let p = A.param init in
  let _, analytic = grad_of build p in
  let numeric = finite_diff build p in
  let ok = ref true in
  for r = 0 to T.rows analytic - 1 do
    for c = 0 to T.cols analytic - 1 do
      let a = T.get analytic r c and n = T.get numeric r c in
      let scale = Stdlib.max 1.0 (Stdlib.max (Float.abs a) (Float.abs n)) in
      if Float.abs (a -. n) /. scale > tol then begin
        ok := false;
        Printf.printf "%s: grad mismatch at (%d,%d): analytic %.8f vs numeric %.8f\n" name
          r c a n
      end
    done
  done;
  if not !ok then Alcotest.failf "%s: gradient check failed" name

let rng = Rng.create 12345
let rand r c = T.uniform rng r c ~lo:0.3 ~hi:1.7
let rand_signed r c = T.uniform rng r c ~lo:(-1.5) ~hi:1.5

(* each test builds a scalar via mean/sum so shapes collapse *)

let t name build init = Alcotest.test_case name `Quick (fun () -> check_grad name build init)

let unary_cases =
  [
    t "add self" (fun p -> A.sum (A.add p p)) (rand_signed 3 4);
    t "sub" (fun p -> A.sum (A.sub p (A.scale 0.5 p))) (rand_signed 3 4);
    t "mul" (fun p -> A.sum (A.mul p p)) (rand_signed 3 4);
    t "div" (fun p -> A.sum (A.div (A.add_scalar 3.0 p) p)) (rand 3 4);
    t "neg" (fun p -> A.sum (A.neg p)) (rand_signed 2 2);
    t "scale" (fun p -> A.sum (A.scale (-2.5) p)) (rand_signed 2 5);
    t "add_scalar" (fun p -> A.sum (A.add_scalar 4.0 p)) (rand_signed 2 2);
    t "pow_const" (fun p -> A.sum (A.pow_const p 3.0)) (rand 2 3);
    t "tanh" (fun p -> A.sum (A.tanh p)) (rand_signed 3 3);
    t "sigmoid" (fun p -> A.sum (A.sigmoid p)) (rand_signed 3 3);
    t "exp" (fun p -> A.sum (A.exp p)) (rand_signed 2 3);
    t "log" (fun p -> A.sum (A.log p)) (rand 2 3);
    t "sqrt" (fun p -> A.sum (A.sqrt p)) (rand 2 3);
    t "relu" (fun p -> A.sum (A.relu p)) (rand 2 3);
    t "abs" (fun p -> A.sum (A.abs p)) (rand 2 3);
    t "mean" (fun p -> A.mean (A.mul p p)) (rand_signed 4 2);
  ]

(* Constants must be captured once: the finite-difference driver re-invokes
   the builder, which must reconstruct the *same* graph. *)
let c42 = rand 4 2
let c23 = rand 2 3
let c33 = rand 3 3
let c32 = rand 3 2
let c14 = rand 1 4
let c34 = rand 3 4
let c11 = rand 1 1
let cc23 = rand 2 3
let cc25 = rand 2 5

let structural_cases =
  [
    t "matmul left" (fun p -> A.sum (A.matmul p (A.const c42))) (rand_signed 3 4);
    t "matmul right" (fun p -> A.sum (A.matmul (A.const c23) p)) (rand_signed 3 4);
    t "matmul chain"
      (fun p -> A.sum (A.matmul (A.matmul p (A.const c33)) (A.const c32)))
      (rand_signed 2 3);
    t "transpose" (fun p -> A.sum (A.mul (A.transpose p) (A.transpose p))) (rand_signed 2 4);
    t "add_rowvec m" (fun p -> A.sum (A.add_rowvec p (A.const c14))) (rand_signed 3 4);
    t "add_rowvec v" (fun p -> A.sum (A.add_rowvec (A.const c34) p)) (rand_signed 1 4);
    t "mul_rowvec m" (fun p -> A.sum (A.mul_rowvec p (A.const c14))) (rand_signed 3 4);
    t "mul_rowvec v" (fun p -> A.sum (A.mul_rowvec (A.const c34) p)) (rand_signed 1 4);
    t "div_rowvec m" (fun p -> A.sum (A.div_rowvec p (A.const c14))) (rand_signed 3 4);
    t "div_rowvec v" (fun p -> A.sum (A.div_rowvec (A.const c34) p)) (rand 1 4);
    t "badd scalar" (fun p -> A.sum (A.badd p (A.const c34))) (rand_signed 1 1);
    t "badd matrix" (fun p -> A.sum (A.badd (A.const c11) p)) (rand_signed 3 4);
    t "bmul scalar" (fun p -> A.sum (A.bmul p (A.const c34))) (rand_signed 1 1);
    t "bmul matrix" (fun p -> A.sum (A.bmul (A.const c11) p)) (rand_signed 3 4);
    t "sum_rows" (fun p -> A.sum (A.mul (A.sum_rows p) (A.const c14))) (rand_signed 3 4);
    t "concat_cols a"
      (fun p -> A.sum (A.mul (A.concat_cols p (A.const cc23)) (A.const cc25)))
      (rand_signed 2 2);
    t "concat_cols b"
      (fun p -> A.sum (A.mul (A.concat_cols (A.const cc23) p) (A.const cc25)))
      (rand_signed 2 2);
    t "slice_cols" (fun p -> A.sum (A.slice_cols p 1 2)) (rand_signed 3 4);
    t "slice_rows" (fun p -> A.sum (A.slice_rows p 1 2)) (rand_signed 4 3);
    t "diamond graph"
      (fun p ->
        let a = A.tanh p in
        let b = A.sigmoid p in
        A.sum (A.mul a b))
      (rand_signed 3 3);
    t "reused node"
      (fun p ->
        let a = A.mul p p in
        A.sum (A.add a a))
      (rand_signed 2 2);
  ]

(* STE ops intentionally disagree with finite differences: the backward pass
   is the identity regardless of the forward projection.  Verify the identity
   property directly. *)
let check_ste_identity name build init =
  let p = A.param init in
  let root = A.sum (build p) in
  A.backward root;
  let g = A.grad p in
  for r = 0 to T.rows g - 1 do
    for c = 0 to T.cols g - 1 do
      if Float.abs (T.get g r c -. 1.0) > 1e-12 then
        Alcotest.failf "%s: STE gradient at (%d,%d) is %f, expected 1" name r c
          (T.get g r c)
    done
  done

let ste_cases =
  [
    Alcotest.test_case "clamp_ste backward is identity" `Quick (fun () ->
        check_ste_identity "clamp_ste"
          (fun p -> A.clamp_ste ~lo:(-0.5) ~hi:0.5 p)
          (rand_signed 3 3));
    Alcotest.test_case "map_ste backward is identity" `Quick (fun () ->
        check_ste_identity "map_ste"
          (fun p -> A.map_ste (fun x -> x *. x) p)
          (rand_signed 2 2));
    Alcotest.test_case "clamp_ste forward clamps" `Quick (fun () ->
        let p = A.param (T.of_array [| -2.0; 0.0; 2.0 |]) in
        let y = A.value (A.clamp_ste ~lo:(-1.0) ~hi:1.0 p) in
        Alcotest.(check (float 0.0)) "lo" (-1.0) (T.get y 0 0);
        Alcotest.(check (float 0.0)) "hi" 1.0 (T.get y 0 2));
  ]

let loss_cases =
  let labels = T.of_arrays [| [| 1.0; 0.0; 0.0 |]; [| 0.0; 0.0; 1.0 |] |] in
  let target = rand 3 4 in
  [
    t "softmax cross entropy"
      (fun p -> A.softmax_cross_entropy ~logits:p ~labels)
      (rand_signed 2 3);
    t "mse" (fun p -> A.mse p target) (rand_signed 3 4);
  ]

(* non-gradient unit tests *)

let test_values () =
  let x = A.const (T.of_array [| 1.0; -2.0 |]) in
  let y = A.add (A.abs x) (A.relu x) in
  Alcotest.(check (float 1e-12)) "abs+relu" 2.0 (T.get (A.value y) 0 0);
  Alcotest.(check (float 1e-12)) "abs+relu neg" 2.0 (T.get (A.value y) 0 1)

let test_clamp_ste_forward () =
  let x = A.const (T.of_array [| -3.0; 0.2; 9.0 |]) in
  let y = A.clamp_ste ~lo:(-1.0) ~hi:1.0 x in
  Alcotest.(check (float 0.0)) "low" (-1.0) (T.get (A.value y) 0 0);
  Alcotest.(check (float 0.0)) "mid" 0.2 (T.get (A.value y) 0 1);
  Alcotest.(check (float 0.0)) "high" 1.0 (T.get (A.value y) 0 2)

let test_softmax_ce_value () =
  (* uniform logits -> loss = ln k *)
  let logits = A.const (T.zeros 4 3) in
  let labels = T.init 4 3 (fun _ c -> if c = 0 then 1.0 else 0.0) in
  let loss = A.softmax_cross_entropy ~logits ~labels in
  Alcotest.(check (float 1e-9)) "ln 3" (log 3.0) (T.get (A.value loss) 0 0)

let test_backward_requires_scalar () =
  let p = A.param (T.zeros 2 2) in
  Alcotest.check_raises "non-scalar root"
    (Invalid_argument "Autodiff.backward: root must be a 1x1 scalar") (fun () ->
      A.backward (A.add p p))

let test_params_collection () =
  let p1 = A.param (T.zeros 1 2) in
  let p2 = A.param (T.ones 1 2) in
  let c = A.const (T.ones 1 2) in
  let root = A.sum (A.add (A.mul p1 p2) c) in
  let ps = A.params root in
  Alcotest.(check int) "two params" 2 (List.length ps);
  Alcotest.(check bool) "ordered by creation" true
    (A.id (List.nth ps 0) < A.id (List.nth ps 1))

let test_params_canonical_order () =
  (* regression: [params] sorts on node id, so the returned order depends only
     on creation order — not on how the graph traversal (a Hashtbl-backed
     visited set) happens to encounter the nodes *)
  let p1 = A.param (T.zeros 1 1) in
  let p2 = A.param (T.ones 1 1) in
  let p3 = A.param (T.scalar 2.0) in
  (* reference p3 first so a traversal-order listing would reverse them *)
  let root = A.sum (A.add (A.mul p3 p2) p1) in
  let ids = List.map A.id (A.params root) in
  Alcotest.(check (list int))
    "creation order regardless of traversal order"
    [ A.id p1; A.id p2; A.id p3 ]
    ids;
  Alcotest.(check (list int))
    "repeat call identical" ids
    (List.map A.id (A.params root))

let test_grad_accumulation_reset () =
  let p = A.param (T.ones 1 1) in
  let build () = A.sum (A.mul p p) in
  A.backward (build ());
  let g1 = T.get (A.grad p) 0 0 in
  A.backward (build ());
  let g2 = T.get (A.grad p) 0 0 in
  Alcotest.(check (float 1e-12)) "no stale accumulation" g1 g2

let test_shape_errors () =
  let a = A.const (T.zeros 2 2) and b = A.const (T.zeros 2 3) in
  Alcotest.check_raises "mse mismatch" (Invalid_argument "Autodiff.mse: shape mismatch")
    (fun () -> ignore (A.mse a (T.zeros 3 2)));
  match A.add a b with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected shape error"

let qcheck_chain_rule =
  QCheck.Test.make ~name:"scale chain rule" ~count:100
    QCheck.(pair (float_range (-3.0) 3.0) (float_range (-2.0) 2.0))
    (fun (k, x0) ->
      let p = A.param (T.scalar x0) in
      let root = A.sum (A.scale k (A.tanh p)) in
      A.backward root;
      let g = T.get (A.grad p) 0 0 in
      let expected = k *. (1.0 -. (Float.tanh x0 *. Float.tanh x0)) in
      Float.abs (g -. expected) < 1e-9)

let () =
  Alcotest.run "autodiff"
    [
      ("unary gradients", unary_cases);
      ("structural gradients", structural_cases);
      ("ste", ste_cases);
      ("losses", loss_cases);
      ( "semantics",
        [
          Alcotest.test_case "values" `Quick test_values;
          Alcotest.test_case "clamp forward" `Quick test_clamp_ste_forward;
          Alcotest.test_case "softmax value" `Quick test_softmax_ce_value;
          Alcotest.test_case "backward scalar only" `Quick test_backward_requires_scalar;
          Alcotest.test_case "params collection" `Quick test_params_collection;
          Alcotest.test_case "params canonical order" `Quick
            test_params_canonical_order;
          Alcotest.test_case "grad reset" `Quick test_grad_accumulation_reset;
          Alcotest.test_case "shape errors" `Quick test_shape_errors;
          QCheck_alcotest.to_alcotest qcheck_chain_rule;
        ] );
    ]
