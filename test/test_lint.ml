(* pnnlint rule fixtures: each rule has a positive site (must be found) and a
   suppressed negative (must be counted, not reported).  The fixtures live in
   lint_fixtures/ (data_only_dirs: never compiled) and only need to parse. *)

module E = Pnnlint.Engine
module R = Pnnlint.Rules

let fixture_config =
  {
    E.scan_dirs = [ "lint_fixtures" ];
    exclude = [];
    (* three root families, like the live config: the experiment stack,
       the serving stack and the orchestration stack *)
    r2_roots =
      [ "Fixture_r2_root"; "Fixture_r2_serve"; "Fixture_r2_orchestrate" ];
  }

let run_fixtures ?(config = fixture_config) () = E.run ~config ~root:"." ()

let site (f : R.finding) = Printf.sprintf "%s %s:%d" f.R.rule f.R.path f.R.line

let compare_sites (pa, la) (pb, lb) =
  match String.compare pa pb with 0 -> Int.compare la lb | c -> c

let test_golden_diagnostics () =
  let report = run_fixtures () in
  let p0, rest =
    List.partition (fun (f : R.finding) -> f.R.rule = "P0") report.E.findings
  in
  let expected =
    [
      "R1 lint_fixtures/fixture_r1.ml:2";
      "R2 lint_fixtures/fixture_r2.ml:2";
      "R2 lint_fixtures/fixture_r2.ml:3";
      "R2 lint_fixtures/fixture_r2_serve.ml:4";
      "R2 lint_fixtures/fixture_r2_orchestrate.ml:4";
      "R3 lint_fixtures/fixture_r3.ml:2";
      "R3 lint_fixtures/fixture_r3.ml:3";
      "R4 lint_fixtures/fixture_r4.ml:2";
      "R4 lint_fixtures/fixture_r4.ml:11";
      "R4 lint_fixtures/lib/tensor/fixture_r4_stub.ml:4";
      "R5 lint_fixtures/fixture_r5.ml:2";
      "R6 lint_fixtures/fixture_r6.ml:2";
      "R6 lint_fixtures/fixture_r6.ml:7";
      "R5 lint_fixtures/fixture_r5.ml:3";
      "S1 lint_fixtures/fixture_s1.ml:2";
      "R5 lint_fixtures/fixture_s1.ml:3";
    ]
  in
  Alcotest.(check (list string))
    "every rule fires at its seeded site"
    (List.sort String.compare expected)
    (List.sort String.compare (List.map site rest));
  match p0 with
  | [ f ] ->
      Alcotest.(check string)
        "parse failure reported as P0" "lint_fixtures/fixture_p0.ml" f.R.path
  | other -> Alcotest.failf "expected exactly one P0, got %d" (List.length other)

let test_suppressions_counted () =
  let report = run_fixtures () in
  Alcotest.(check int) "nine suppressed findings" 9
    (List.length report.E.suppressed);
  Alcotest.(check int) "nine valid suppression comments" 9
    (List.length report.E.suppressions);
  List.iter
    (fun (s : E.suppression) ->
      if s.E.reason = "" then
        Alcotest.failf "suppression without reason at %s:%d" s.E.sup_path
          s.E.sup_line)
    report.E.suppressions;
  (* the malformed one in fixture_s1 must not have silenced its finding *)
  let r5_s1 =
    List.exists
      (fun (f : R.finding) ->
        f.R.rule = "R5" && f.R.path = "lint_fixtures/fixture_s1.ml")
      report.E.findings
  in
  Alcotest.(check bool) "reasonless suppression suppresses nothing" true r5_s1

let test_safety_comments_tracked () =
  let report = run_fixtures () in
  Alcotest.(check (list (pair string int)))
    "SAFETY sites"
    [
      ("lint_fixtures/fixture_r4.ml", 5);
      ("lint_fixtures/fixture_r4.ml", 14);
      ("lint_fixtures/lib/tensor/fixture_r4_stub.ml", 6);
    ]
    (List.sort compare_sites
       (List.map (fun (path, line, _) -> (path, line)) report.E.safety))

let test_r2_needs_reachability () =
  (* with a root that cannot reach Fixture_r2, the wall-clock calls are not
     in any result-producing closure and R2 must stay silent *)
  let config = { fixture_config with E.r2_roots = [ "Fixture_r1" ] } in
  let report = run_fixtures ~config () in
  let r2 =
    List.filter (fun (f : R.finding) -> f.R.rule = "R2") report.E.findings
  in
  Alcotest.(check int) "no R2 outside the closure" 0 (List.length r2)

let test_rule_catalogue () =
  Alcotest.(check (list string))
    "six documented rules"
    [ "R1"; "R2"; "R3"; "R4"; "R5"; "R6" ]
    (List.map (fun (r : R.rule_info) -> r.R.id) R.all_rules)

let test_render_shapes () =
  let report = run_fixtures () in
  let rendered = E.render_report report in
  Alcotest.(check bool) "summary line present" true
    (String.length rendered > 0
    && List.exists
         (fun l ->
           String.length l >= 8 && String.sub l 0 8 = "pnnlint:")
         (String.split_on_char '\n' rendered));
  let allow = E.render_allow_report report in
  Alcotest.(check bool) "allow report lists suppressions" true
    (String.length allow > 0)

let test_live_tree_clean () =
  (* Run the real gate when the caller tells us where the sources are (the
     root-level `@lint` alias sets PNN_LINT_ROOT); inside the plain test
     sandbox the tree is not materialized, so there is nothing to scan. *)
  match Sys.getenv_opt "PNN_LINT_ROOT" with
  | None -> print_endline "PNN_LINT_ROOT unset; live-tree check runs via @lint"
  | Some root ->
      let report = E.run ~root () in
      List.iter
        (fun f -> print_endline (E.render_finding f))
        report.E.findings;
      Alcotest.(check int) "live tree has no unsuppressed findings" 0
        (List.length report.E.findings);
      Alcotest.(check bool) "live tree was actually scanned" true
        (report.E.files_scanned > 50)

let () =
  Alcotest.run "lint"
    [
      ( "fixtures",
        [
          Alcotest.test_case "golden diagnostics" `Quick test_golden_diagnostics;
          Alcotest.test_case "suppressions counted" `Quick
            test_suppressions_counted;
          Alcotest.test_case "SAFETY tracked" `Quick test_safety_comments_tracked;
          Alcotest.test_case "R2 needs reachability" `Quick
            test_r2_needs_reachability;
        ] );
      ( "surface",
        [
          Alcotest.test_case "rule catalogue" `Quick test_rule_catalogue;
          Alcotest.test_case "render shapes" `Quick test_render_shapes;
        ] );
      ( "live-tree",
        [ Alcotest.test_case "clean" `Quick test_live_tree_clean ] );
    ]
