(* pnnlint rule fixtures: each rule has a positive site (must be found) and a
   suppressed negative (must be counted, not reported).  The fixtures live in
   lint_fixtures/ (data_only_dirs: never compiled) and only need to parse. *)

module E = Pnnlint.Engine
module R = Pnnlint.Rules

let fixture_config =
  {
    E.scan_dirs = [ "lint_fixtures" ];
    exclude = [];
    (* three root families, like the live config: the experiment stack,
       the serving stack and the orchestration stack *)
    r2_roots =
      [ "Fixture_r2_root"; "Fixture_r2_serve"; "Fixture_r2_orchestrate" ];
    (* R7 seeds are the live defaults: fixture_r7 mentions Domain, so it is
       picked up by auto-detection like real spawning code *)
    r7_seeds = [ "Domain"; "Parallel"; "Coordinator"; "Thread" ];
    fork_allowed = [ "Coordinator" ];
    cstub_pairs =
      [
        ( "lint_fixtures/cstub/fixture_stubs.c",
          "lint_fixtures/cstub/fixture_kernels.ml",
          "lint_fixtures/cstub/fixture_dune_ok" );
        ( "lint_fixtures/cstub/fixture_badflags.c",
          "lint_fixtures/cstub/fixture_badflags_kernels.ml",
          "lint_fixtures/cstub/fixture_dune_bad" );
      ];
  }

let run_fixtures ?(config = fixture_config) () = E.run ~config ~root:"." ()

let site (f : R.finding) = Printf.sprintf "%s %s:%d" f.R.rule f.R.path f.R.line

let compare_sites (pa, la) (pb, lb) =
  match String.compare pa pb with 0 -> Int.compare la lb | c -> c

let test_golden_diagnostics () =
  let report = run_fixtures () in
  let p0, rest =
    List.partition (fun (f : R.finding) -> f.R.rule = "P0") report.E.findings
  in
  let expected =
    [
      "R1 lint_fixtures/fixture_r1.ml:2";
      "R2 lint_fixtures/fixture_r2.ml:2";
      "R2 lint_fixtures/fixture_r2.ml:3";
      "R2 lint_fixtures/fixture_r2_serve.ml:4";
      "R2 lint_fixtures/fixture_r2_orchestrate.ml:4";
      "R3 lint_fixtures/fixture_r3.ml:2";
      "R3 lint_fixtures/fixture_r3.ml:3";
      "R4 lint_fixtures/fixture_r4.ml:2";
      "R4 lint_fixtures/fixture_r4.ml:11";
      "R4 lint_fixtures/lib/tensor/fixture_r4_stub.ml:4";
      "R5 lint_fixtures/fixture_r5.ml:2";
      "R6 lint_fixtures/fixture_r6.ml:2";
      "R6 lint_fixtures/fixture_r6.ml:7";
      "R5 lint_fixtures/fixture_r5.ml:3";
      "S1 lint_fixtures/fixture_s1.ml:2";
      "R5 lint_fixtures/fixture_s1.ml:3";
      (* R7: fork outside the latch + module-level mutable state in the
         closure of the Domain-mentioning fixture *)
      "R7 lint_fixtures/fixture_r7.ml:5";
      "R7 lint_fixtures/fixture_r7_state.ml:3";
      "R7 lint_fixtures/fixture_r7_state.ml:4";
      "R7 lint_fixtures/fixture_r7_state.ml:9";
      (* R8 pair 1: twin/arity/single-name on the OCaml side; noalloc
         violation, fma, stray libm, orphan, pragma and attribute on the C
         side *)
      "R8 lint_fixtures/cstub/fixture_kernels.ml:10";
      "R8 lint_fixtures/cstub/fixture_kernels.ml:15";
      "R8 lint_fixtures/cstub/fixture_kernels.ml:24";
      (* cascade of the seeded arity bug: the byte twin's shape no longer
         matches the declared arity either *)
      "R8 lint_fixtures/cstub/fixture_stubs.c:32";
      "R8 lint_fixtures/cstub/fixture_stubs.c:39";
      "R8 lint_fixtures/cstub/fixture_stubs.c:60";
      "R8 lint_fixtures/cstub/fixture_stubs.c:71";
      "R8 lint_fixtures/cstub/fixture_stubs.c:91";
      "R8 lint_fixtures/cstub/fixture_stubs.c:97";
      "R8 lint_fixtures/cstub/fixture_stubs.c:99";
      (* R8 pair 2: both contract flags missing from the dune stanza, and
         the multiply-add line reported as a contraction risk *)
      "R8 lint_fixtures/cstub/fixture_dune_bad:1";
      "R8 lint_fixtures/cstub/fixture_dune_bad:1";
      "R8 lint_fixtures/cstub/fixture_badflags.c:10";
    ]
  in
  Alcotest.(check (list string))
    "every rule fires at its seeded site"
    (List.sort String.compare expected)
    (List.sort String.compare (List.map site rest));
  match p0 with
  | [ f ] ->
      Alcotest.(check string)
        "parse failure reported as P0" "lint_fixtures/fixture_p0.ml" f.R.path
  | other -> Alcotest.failf "expected exactly one P0, got %d" (List.length other)

let test_suppressions_counted () =
  let report = run_fixtures () in
  Alcotest.(check int) "thirteen suppressed findings" 13
    (List.length report.E.suppressed);
  Alcotest.(check int) "thirteen valid suppression comments" 13
    (List.length report.E.suppressions);
  List.iter
    (fun (s : E.suppression) ->
      if s.E.reason = "" then
        Alcotest.failf "suppression without reason at %s:%d" s.E.sup_path
          s.E.sup_line)
    report.E.suppressions;
  (* the malformed one in fixture_s1 must not have silenced its finding *)
  let r5_s1 =
    List.exists
      (fun (f : R.finding) ->
        f.R.rule = "R5" && f.R.path = "lint_fixtures/fixture_s1.ml")
      report.E.findings
  in
  Alcotest.(check bool) "reasonless suppression suppresses nothing" true r5_s1

let test_safety_comments_tracked () =
  let report = run_fixtures () in
  Alcotest.(check (list (pair string int)))
    "SAFETY sites"
    [
      ("lint_fixtures/fixture_r4.ml", 5);
      ("lint_fixtures/fixture_r4.ml", 14);
      ("lint_fixtures/lib/tensor/fixture_r4_stub.ml", 6);
    ]
    (List.sort compare_sites
       (List.map (fun (path, line, _) -> (path, line)) report.E.safety))

let test_r2_needs_reachability () =
  (* with a root that cannot reach Fixture_r2, the wall-clock calls are not
     in any result-producing closure and R2 must stay silent *)
  let config = { fixture_config with E.r2_roots = [ "Fixture_r1" ] } in
  let report = run_fixtures ~config () in
  let r2 =
    List.filter (fun (f : R.finding) -> f.R.rule = "R2") report.E.findings
  in
  Alcotest.(check int) "no R2 outside the closure" 0 (List.length r2)

let test_r7_needs_reachability () =
  (* with seeds nothing references, no module is in the domain closure and
     only the closure-independent fork check may fire *)
  let config = { fixture_config with E.r7_seeds = [ "Fixture_no_such" ] } in
  let report = run_fixtures ~config () in
  let r7 =
    List.filter (fun (f : R.finding) -> f.R.rule = "R7") report.E.findings
  in
  Alcotest.(check (list string))
    "only the fork finding survives without reachability"
    [ "R7 lint_fixtures/fixture_r7.ml:5" ]
    (List.map site r7)

let test_rule_catalogue () =
  Alcotest.(check (list string))
    "eight documented rules"
    [ "R1"; "R2"; "R3"; "R4"; "R5"; "R6"; "R7"; "R8" ]
    (List.map (fun (r : R.rule_info) -> r.R.id) R.all_rules)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_json_output () =
  let report = run_fixtures () in
  let js = E.render_json report in
  Alcotest.(check bool) "json carries a known finding" true
    (contains
       ~needle:
         {|{"rule":"R7","path":"lint_fixtures/fixture_r7.ml","line":5|}
       js);
  Alcotest.(check bool) "json carries suppression records" true
    (contains ~needle:{|"suppressions":[{|} js);
  Alcotest.(check bool) "json is a single terminated document" true
    (String.length js > 2 && js.[String.length js - 1] = '\n')

let test_stats_golden () =
  let report = run_fixtures () in
  let expected =
    {|{"files_scanned":17,"rules":[{"id":"R1","findings":1,"suppressed":1,"allows":1},{"id":"R2","findings":4,"suppressed":3,"allows":3},{"id":"R3","findings":2,"suppressed":1,"allows":1},{"id":"R4","findings":3,"suppressed":2,"allows":2},{"id":"R5","findings":3,"suppressed":1,"allows":1},{"id":"R6","findings":2,"suppressed":1,"allows":1},{"id":"R7","findings":4,"suppressed":3,"allows":3},{"id":"R8","findings":13,"suppressed":1,"allows":1},{"id":"S1","findings":1,"suppressed":0,"allows":0},{"id":"P0","findings":1,"suppressed":0,"allows":0}],"totals":{"findings":34,"suppressed":13,"suppression_comments":13,"safety_comments":3}}
|}
  in
  Alcotest.(check string) "stats json is byte-stable" expected
    (E.render_stats_json report)

let test_render_shapes () =
  let report = run_fixtures () in
  let rendered = E.render_report report in
  Alcotest.(check bool) "summary line present" true
    (String.length rendered > 0
    && List.exists
         (fun l ->
           String.length l >= 8 && String.sub l 0 8 = "pnnlint:")
         (String.split_on_char '\n' rendered));
  let allow = E.render_allow_report report in
  Alcotest.(check bool) "allow report lists suppressions" true
    (String.length allow > 0)

let test_live_tree_clean () =
  (* Run the real gate when the caller tells us where the sources are (the
     root-level `@lint` alias sets PNN_LINT_ROOT); inside the plain test
     sandbox the tree is not materialized, so there is nothing to scan. *)
  match Sys.getenv_opt "PNN_LINT_ROOT" with
  | None -> print_endline "PNN_LINT_ROOT unset; live-tree check runs via @lint"
  | Some root ->
      let report = E.run ~root () in
      List.iter
        (fun f -> print_endline (E.render_finding f))
        report.E.findings;
      Alcotest.(check int) "live tree has no unsuppressed findings" 0
        (List.length report.E.findings);
      Alcotest.(check bool) "live tree was actually scanned" true
        (report.E.files_scanned > 50)

let () =
  Alcotest.run "lint"
    [
      ( "fixtures",
        [
          Alcotest.test_case "golden diagnostics" `Quick test_golden_diagnostics;
          Alcotest.test_case "suppressions counted" `Quick
            test_suppressions_counted;
          Alcotest.test_case "SAFETY tracked" `Quick test_safety_comments_tracked;
          Alcotest.test_case "R2 needs reachability" `Quick
            test_r2_needs_reachability;
          Alcotest.test_case "R7 needs reachability" `Quick
            test_r7_needs_reachability;
        ] );
      ( "surface",
        [
          Alcotest.test_case "rule catalogue" `Quick test_rule_catalogue;
          Alcotest.test_case "render shapes" `Quick test_render_shapes;
          Alcotest.test_case "json output" `Quick test_json_output;
          Alcotest.test_case "stats golden" `Quick test_stats_golden;
        ] );
      ( "live-tree",
        [ Alcotest.test_case "clean" `Quick test_live_tree_clean ] );
    ]
