(* Tests for descriptive statistics. *)

let feq = Alcotest.(check (float 1e-9))

let test_mean () = feq "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |])
let test_mean_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.mean: empty") (fun () ->
      ignore (Stats.mean [||]))

let test_variance () =
  (* population variance of 1,2,3,4 = 1.25 *)
  feq "variance" 1.25 (Stats.variance [| 1.0; 2.0; 3.0; 4.0 |])

let test_std () = feq "std" (sqrt 1.25) (Stats.std [| 1.0; 2.0; 3.0; 4.0 |])
let test_std_constant () = feq "constant std" 0.0 (Stats.std [| 5.0; 5.0; 5.0 |])
let test_min_max () =
  feq "min" (-3.0) (Stats.min [| 2.0; -3.0; 7.0 |]);
  feq "max" 7.0 (Stats.max [| 2.0; -3.0; 7.0 |])

let test_median_odd () = feq "median odd" 3.0 (Stats.median [| 5.0; 1.0; 3.0 |])
let test_median_even () = feq "median even" 2.5 (Stats.median [| 4.0; 1.0; 2.0; 3.0 |])

let test_quantile_endpoints () =
  let a = [| 10.0; 20.0; 30.0 |] in
  feq "q0" 10.0 (Stats.quantile a 0.0);
  feq "q1" 30.0 (Stats.quantile a 1.0);
  feq "q0.5" 20.0 (Stats.quantile a 0.5)

let test_quantile_interpolation () =
  feq "q0.25 of 0..3" 0.75 (Stats.quantile [| 0.0; 1.0; 2.0; 3.0 |] 0.25)

let test_quantile_invalid () =
  Alcotest.check_raises "q > 1" (Invalid_argument "Stats.quantile: q outside [0,1]")
    (fun () -> ignore (Stats.quantile [| 1.0 |] 1.5))

let test_quantile_single_element () =
  List.iter
    (fun q -> feq (Printf.sprintf "q=%g of singleton" q) 7.0 (Stats.quantile [| 7.0 |] q))
    [ 0.0; 0.3; 0.5; 1.0 ]

let test_quantile_rejects_nan () =
  Alcotest.check_raises "nan input" (Invalid_argument "Stats.quantile: nan input")
    (fun () -> ignore (Stats.quantile [| 1.0; Float.nan; 2.0 |] 0.5))

let test_quantile_negative_zero_sorts () =
  (* Float.compare orders -0.0 before 0.0; polymorphic compare on boxed
     floats did too, but this pins the behaviour against regressions *)
  feq "q0 with signed zeros" (-1.0) (Stats.quantile [| 0.0; -0.0; -1.0 |] 0.0);
  feq "q1 with signed zeros" 0.0 (Stats.quantile [| 0.0; -0.0; -1.0 |] 1.0)

let test_mean_std () =
  let m, s = Stats.mean_std [| 1.0; 3.0 |] in
  feq "mean" 2.0 m;
  feq "std" 1.0 s

let qcheck_std_nonneg =
  QCheck.Test.make ~name:"std >= 0" ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (float_range (-100.) 100.))
    (fun l -> Stats.std (Array.of_list l) >= 0.0)

let qcheck_mean_bounds =
  QCheck.Test.make ~name:"min <= mean <= max" ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (float_range (-100.) 100.))
    (fun l ->
      let a = Array.of_list l in
      let m = Stats.mean a in
      Stats.min a -. 1e-9 <= m && m <= Stats.max a +. 1e-9)

let qcheck_quantile_monotone =
  QCheck.Test.make ~name:"quantile monotone in q" ~count:300
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_range 2 40) (float_range (-50.) 50.))
        (pair (float_range 0. 1.) (float_range 0. 1.)))
    (fun (l, (q1, q2)) ->
      let a = Array.of_list l in
      let lo = Stdlib.min q1 q2 and hi = Stdlib.max q1 q2 in
      Stats.quantile a lo <= Stats.quantile a hi +. 1e-9)

let () =
  Alcotest.run "stats"
    [
      ( "basics",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "mean empty" `Quick test_mean_empty;
          Alcotest.test_case "variance" `Quick test_variance;
          Alcotest.test_case "std" `Quick test_std;
          Alcotest.test_case "std constant" `Quick test_std_constant;
          Alcotest.test_case "min/max" `Quick test_min_max;
          Alcotest.test_case "median odd" `Quick test_median_odd;
          Alcotest.test_case "median even" `Quick test_median_even;
          Alcotest.test_case "quantile endpoints" `Quick test_quantile_endpoints;
          Alcotest.test_case "quantile interpolation" `Quick test_quantile_interpolation;
          Alcotest.test_case "quantile invalid" `Quick test_quantile_invalid;
          Alcotest.test_case "quantile singleton" `Quick test_quantile_single_element;
          Alcotest.test_case "quantile rejects nan" `Quick test_quantile_rejects_nan;
          Alcotest.test_case "quantile signed zeros" `Quick test_quantile_negative_zero_sorts;
          Alcotest.test_case "mean_std" `Quick test_mean_std;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_std_nonneg;
          QCheck_alcotest.to_alcotest qcheck_mean_bounds;
          QCheck_alcotest.to_alcotest qcheck_quantile_monotone;
        ] );
    ]
