(* Tests for the deterministic multicore execution layer.

   The determinism contract: every parallel entry point is bit-identical for
   any worker count.  The suite compares explicit 1-job and 4-job pools
   in-process; the dune [determinism] alias additionally re-runs this binary
   under REPRO_JOBS=1 and REPRO_JOBS=4 to exercise the env-driven shared
   pool. *)

module T = Tensor
module A = Autodiff
module P = Parallel.Pool

let pool1 = lazy (P.create ~jobs:1 ())
let pool4 = lazy (P.create ~jobs:4 ())

let check_float_array msg a b =
  Alcotest.(check (array (float 0.0))) msg a b

(* {1 Pool combinators} *)

let test_map_matches_sequential () =
  let a = Array.init 10_000 (fun i -> float_of_int i *. 0.37) in
  let f x = (Stdlib.sin x *. Stdlib.exp (x *. 1e-4)) +. (x *. x *. 1e-3) in
  let expected = Array.map f a in
  check_float_array "jobs=1" expected (P.map_array (Lazy.force pool1) f a);
  check_float_array "jobs=4" expected (P.map_array (Lazy.force pool4) f a)

let test_mapi_and_list () =
  let a = Array.init 1000 (fun i -> i) in
  let f i x = (i * 3) + x in
  Alcotest.(check (array int))
    "mapi" (Array.mapi f a)
    (P.mapi_array (Lazy.force pool4) f a);
  let l = List.init 257 (fun i -> i) in
  Alcotest.(check (list int))
    "map_list"
    (List.map (fun x -> x * x) l)
    (P.map_list (Lazy.force pool4) (fun x -> x * x) l)

let test_map_reduce_ordered_bit_identical () =
  (* Float summation is order sensitive; the fixed-chunk ordered reduction
     must give the exact same bits for 1 and 4 workers. *)
  let a = Array.init 10_000 (fun i -> Stdlib.sin (float_of_int i) *. 1e3) in
  let reduce x y = x +. y in
  let s1 = P.map_reduce_ordered (Lazy.force pool1) ~map:Fun.id ~reduce a in
  let s4 = P.map_reduce_ordered (Lazy.force pool4) ~map:Fun.id ~reduce a in
  (match (s1, s4) with
  | Some x, Some y ->
      Alcotest.(check bool)
        (Printf.sprintf "bitwise equal sums (%h vs %h)" x y)
        true
        (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
  | _ -> Alcotest.fail "empty reduction");
  Alcotest.(check bool)
    "empty -> None" true
    (P.map_reduce_ordered (Lazy.force pool4) ~map:Fun.id ~reduce [||] = None)

let test_parallel_for_covers_all_indices () =
  let n = 5000 in
  let hits = Array.make n 0 in
  P.parallel_for (Lazy.force pool4) ~n (fun i -> hits.(i) <- hits.(i) + 1);
  Alcotest.(check bool) "each index exactly once" true
    (Array.for_all (fun h -> h = 1) hits)

(* {1 Shutdown and failure semantics} *)

let test_shutdown_idempotent () =
  let pool = P.create ~jobs:4 () in
  let a = Array.init 100 (fun i -> i) in
  Alcotest.(check (array int)) "live pool" (Array.map succ a)
    (P.map_array pool succ a);
  P.shutdown pool;
  P.shutdown pool;
  (* after shutdown the pool degrades to the sequential path *)
  Alcotest.(check (array int)) "after shutdown" (Array.map succ a)
    (P.map_array pool succ a)

let test_worker_exception_propagates () =
  Alcotest.check_raises "exception crosses domains" (Failure "boom") (fun () ->
      ignore
        (P.map_array (Lazy.force pool4)
           (fun i -> if i = 17 then failwith "boom" else i)
           (Array.init 100 (fun i -> i))));
  (* the pool survives a failed region *)
  Alcotest.(check (array int)) "pool still healthy" [| 1; 2; 3 |]
    (P.map_array (Lazy.force pool4) succ [| 0; 1; 2 |])

(* {1 Fixtures for the wired-in hot loops} *)

let surrogate =
  lazy
    (let dataset =
       Surrogate.Pipeline.generate_dataset ~pool:(Lazy.force pool1) ~n:250 ()
     in
     fst
       (Surrogate.Pipeline.train_surrogate ~arch:[ 10; 8; 6; 4 ] ~max_epochs:150
          (Rng.create 42) dataset))

let blob_data =
  lazy
    (Datasets.Synth.generate
       {
         Datasets.Synth.name = "par-blobs";
         features = 3;
         classes = 2;
         samples = 70;
         modes_per_class = 1;
         class_sep = 0.32;
         spread = 0.06;
         label_noise = 0.0;
         priors = None;
         seed = 19;
       })

let blob_split () = Datasets.Synth.split (Rng.create 8) (Lazy.force blob_data)

let config =
  { Pnn.Config.default with Pnn.Config.epsilon = 0.1; n_mc_train = 5; n_mc_val = 3 }

let make_net seed =
  Pnn.Network.create (Rng.create seed) config (Lazy.force surrogate) ~inputs:3
    ~outputs:2

(* {1 Bit-identity of the wired hot loops across job counts} *)

let bits = Int64.bits_of_float

let check_tensor_bits msg a b =
  Alcotest.(check (array int64))
    msg
    (Array.map bits (T.to_array a))
    (Array.map bits (T.to_array b))

let test_mc_accuracy_bit_identical () =
  let net = make_net 11 in
  let split = blob_split () in
  let eval pool =
    Pnn.Evaluation.mc_accuracy ~pool (Rng.create 5) net ~epsilon:0.08 ~n:16
      ~x:split.Datasets.Synth.x_test ~y:split.Datasets.Synth.y_test
  in
  let r1 = eval (Lazy.force pool1) in
  let r4 = eval (Lazy.force pool4) in
  Alcotest.(check int) "16 draws" 16 (Array.length r1.Pnn.Evaluation.accuracies);
  Alcotest.(check (array int64))
    "accuracies bitwise equal"
    (Array.map bits r1.Pnn.Evaluation.accuracies)
    (Array.map bits r4.Pnn.Evaluation.accuracies);
  Alcotest.(check bool) "means bitwise equal" true
    (Int64.equal
       (bits r1.Pnn.Evaluation.mean_accuracy)
       (bits r4.Pnn.Evaluation.mean_accuracy))

(* One full training step (pooled MC loss -> backward -> Adam) must move the
   parameters to bit-identical values for 1 and 4 jobs. *)
let one_step pool =
  let net = make_net 23 in
  let split = blob_split () in
  let data = Pnn.Training.of_split ~n_classes:2 split in
  let shapes = Pnn.Network.theta_shapes net in
  let noises =
    Pnn.Noise.draw_many (Rng.create 31) ~epsilon:0.1 ~theta_shapes:shapes ~n:6
  in
  let loss =
    Pnn.Network.mc_loss_pooled pool net ~noises ~x:data.Pnn.Training.x_train
      ~labels:data.Pnn.Training.y_train
  in
  A.backward loss;
  let params = Pnn.Network.params_theta net @ Pnn.Network.params_omega net in
  let grads = List.map (fun p -> T.copy (A.grad p)) params in
  let opt = Nn.Optimizer.adam ~lr:0.05 () in
  Nn.Optimizer.step opt params;
  (T.get (A.value loss) 0 0, grads, List.map (fun p -> T.copy (A.value p)) params)

let test_training_step_bit_identical () =
  let l1, g1, v1 = one_step (Lazy.force pool1) in
  let l4, g4, v4 = one_step (Lazy.force pool4) in
  Alcotest.(check bool) "loss bitwise equal" true (Int64.equal (bits l1) (bits l4));
  List.iteri (fun i (a, b) -> check_tensor_bits (Printf.sprintf "grad %d" i) a b)
    (List.combine g1 g4);
  List.iteri
    (fun i (a, b) -> check_tensor_bits (Printf.sprintf "updated param %d" i) a b)
    (List.combine v1 v4)

let test_generate_dataset_bit_identical () =
  let gen pool = Surrogate.Pipeline.generate_dataset ~pool ~n:64 () in
  let d1 = gen (Lazy.force pool1) in
  let d4 = gen (Lazy.force pool4) in
  Alcotest.(check int) "rejected equal" d1.Surrogate.Pipeline.rejected
    d4.Surrogate.Pipeline.rejected;
  Alcotest.(check int) "kept equal"
    (Array.length d1.Surrogate.Pipeline.omegas)
    (Array.length d4.Surrogate.Pipeline.omegas);
  let flatten rows = Array.concat (Array.to_list rows) in
  Alcotest.(check (array int64))
    "omegas bitwise equal"
    (Array.map bits (flatten d1.Surrogate.Pipeline.omegas))
    (Array.map bits (flatten d4.Surrogate.Pipeline.omegas));
  Alcotest.(check (array int64))
    "etas bitwise equal"
    (Array.map bits (flatten d1.Surrogate.Pipeline.etas))
    (Array.map bits (flatten d4.Surrogate.Pipeline.etas));
  Alcotest.(check (array int64))
    "rmses bitwise equal"
    (Array.map bits d1.Surrogate.Pipeline.fit_rmses)
    (Array.map bits d4.Surrogate.Pipeline.fit_rmses)

(* A full (short) Training.fit — replica caches, in-place gradient reduction,
   Adam and early stopping included — must produce bit-identical loss
   histories and final parameters for 1 and 4 jobs. *)
let test_fit_bit_identical () =
  let fit pool =
    let net = make_net 23 in
    let data = Pnn.Training.of_split ~n_classes:2 (blob_split ()) in
    let short = { config with Pnn.Config.max_epochs = 8; patience = 20 } in
    let net = Pnn.Network.of_layers short (Pnn.Network.layers net) in
    let res = Pnn.Training.fit ~pool (Rng.create 77) net data in
    let params =
      List.map
        (fun p -> T.copy (A.value p))
        (Pnn.Network.params_theta net @ Pnn.Network.params_omega net)
    in
    (res.Pnn.Training.history, params)
  in
  let h1, p1 = fit (Lazy.force pool1) in
  let h4, p4 = fit (Lazy.force pool4) in
  Alcotest.(check (array int64))
    "train losses bitwise equal"
    (Array.map bits h1.Nn.Train.train_losses)
    (Array.map bits h4.Nn.Train.train_losses);
  Alcotest.(check (array int64))
    "val losses bitwise equal"
    (Array.map bits h1.Nn.Train.val_losses)
    (Array.map bits h4.Nn.Train.val_losses);
  List.iteri
    (fun i (a, b) -> check_tensor_bits (Printf.sprintf "final param %d" i) a b)
    (List.combine p1 p4)

(* Table II at a tiny scale: two seeds so train_best actually fans out, one
   test epsilon, a short training budget.  The rendered table (all cells) must
   match exactly across job counts. *)
let test_table2_bit_identical () =
  let scale =
    {
      Experiments.Setup.seeds = [ 1; 2 ];
      test_epsilons = [ 0.05 ];
      n_mc_test = 4;
      config =
        {
          Pnn.Config.default with
          Pnn.Config.max_epochs = 20;
          patience = 20;
          n_mc_train = 2;
          n_mc_val = 2;
        };
      init = `Centered;
      surrogate_samples = 250;
      surrogate_epochs = 150;
    }
  in
  let run pool =
    Experiments.Table2.run ~pool ~datasets:[ Lazy.force blob_data ] scale
      (Lazy.force surrogate)
  in
  let t1 = run (Lazy.force pool1) in
  let t4 = run (Lazy.force pool4) in
  Alcotest.(check string)
    "rendered tables identical"
    (Experiments.Table2.render t1)
    (Experiments.Table2.render t4)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map matches sequential" `Quick test_map_matches_sequential;
          Alcotest.test_case "mapi and map_list" `Quick test_mapi_and_list;
          Alcotest.test_case "ordered map-reduce" `Quick
            test_map_reduce_ordered_bit_identical;
          Alcotest.test_case "parallel_for coverage" `Quick
            test_parallel_for_covers_all_indices;
          Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
          Alcotest.test_case "worker exception propagates" `Quick
            test_worker_exception_propagates;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "mc_accuracy bit-identical" `Quick
            test_mc_accuracy_bit_identical;
          Alcotest.test_case "training step bit-identical" `Quick
            test_training_step_bit_identical;
          Alcotest.test_case "fit bit-identical" `Quick test_fit_bit_identical;
          Alcotest.test_case "generate_dataset bit-identical" `Quick
            test_generate_dataset_bit_identical;
          Alcotest.test_case "table2 quick-scale bit-identical" `Quick
            test_table2_bit_identical;
        ] );
    ]
